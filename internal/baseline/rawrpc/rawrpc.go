// Package rawrpc implements the paper's RawWrite baseline (Table 2): a
// FaRM-style RPC over RC one-sided writes with every ScaleRPC optimization
// disabled. Each client gets its own statically mapped message zone in one
// big server pool, and its own RC connection; the server polls all zones
// and answers with RC writes into the client's response zone.
//
// This is exactly the design whose scalability collapses in Figures 1(b),
// 8 and 10: the pool footprint grows linearly with clients (CPU-cache
// thrash on inbound) and response writes fan out over every client QP
// (NIC-cache thrash on outbound).
package rawrpc

import (
	"fmt"

	"scalerpc/internal/ctrlplane"
	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/rpcwire"
	"scalerpc/internal/sim"
	"scalerpc/internal/telemetry"
)

// ServerConfig sizes a RawWrite server.
type ServerConfig struct {
	Workers         int
	BlockSize       int
	BlocksPerClient int
	MaxClients      int
	// PollTimeout bounds worker sleep when idle.
	PollTimeout sim.Duration
	// ParseCost is CPU time to parse/dispatch one request.
	ParseCost sim.Duration
}

// DefaultServerConfig mirrors the paper's setup: 10 worker threads, 4 KB
// message blocks.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		Workers:         10,
		BlockSize:       4096,
		BlocksPerClient: 16,
		MaxClients:      512,
		PollTimeout:     20 * sim.Microsecond,
		ParseCost:       60,
	}
}

// Server is a RawWrite RPC server.
type Server struct {
	Cfg  ServerConfig
	Host *host.Host

	pool     *rpcwire.Pool
	handlers [256]rpccore.Handler
	clients  []*clientState
	workers  []*worker
	started  bool

	// freeIDs holds zones released by the control-plane adapter when a
	// client is dropped (lease expiry, cache teardown).
	freeIDs []uint16
	// limbo is the FIFO of quarantined identities: ungracefully departed
	// ids waiting for their client to dial back in, released for reuse
	// when the quarantine overflows.
	limbo []uint16

	// rel is the registry-shared reliability counter block; replies is the
	// bounded exactly-once reply cache consulted before every handler run.
	rel     *rpccore.RelStats
	replies *rpccore.ReplyCache

	// gate, when set, charges every zone to a tenant (tenancy.go).
	gate TenantGate
}

// clientState is the server-side view of one connected client.
type clientState struct {
	id       uint16
	qp       *nic.QP
	zone     int
	respAddr uint64 // base of the client's response zone
	respRKey uint32

	// parked marks a control-plane client that gracefully left; the zone
	// stays statically mapped (and swept) until the client is dropped.
	parked bool
	// limbo marks an identity quarantined after an ungraceful departure:
	// the id (and with it the reply cache's dedup window) stays reserved
	// for a crash-recovered client dialing back in with the same regions.
	limbo bool

	// tenant owns the zone; counted marks the charge as live with the
	// tenant gate (tenancy.go).
	tenant  uint16
	counted bool
}

// scratchRing is the number of response staging blocks per worker; the
// ring must be deep enough that the NIC has gathered a block before it is
// reused.
const scratchRing = 64

type worker struct {
	s          *Server
	idx        int
	sig        *sim.Signal
	scratch    *memory.Region // scratchRing × BlockSize response staging
	scratchIdx int
	buf        []byte // response assembly buffer (no memory-model cost)
	// req holds a stable snapshot of the frame being served: the pool
	// block is live RDMA-writable memory, and the serve path yields
	// virtual time (ReadMem, ParseCost, the handler's own Work), during
	// which an in-flight duplicate write may overwrite the block.
	req []byte
	// Served counts requests this worker processed.
	Served uint64
}

// NewServer allocates the pool and worker bookkeeping.
func NewServer(h *host.Host, cfg ServerConfig) *Server {
	poolReg := h.Mem.Register(cfg.BlockSize*cfg.BlocksPerClient*cfg.MaxClients,
		memory.PageSize2M, memory.LocalWrite|memory.RemoteWrite)
	s := &Server{
		Cfg:     cfg,
		Host:    h,
		pool:    rpcwire.NewPool(poolReg, cfg.BlockSize, cfg.BlocksPerClient, cfg.MaxClients),
		replies: rpccore.NewReplyCache(cfg.BlocksPerClient),
	}
	s.rel = rpccore.SharedRel(h.Tel.Registry())
	var tel telemetry.Scope
	if reg := h.Tel.Registry(); reg != nil {
		tel = reg.UniqueScope("rawrpc")
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			s:       s,
			idx:     i,
			sig:     sim.NewSignal(h.Env),
			scratch: h.Mem.Register(cfg.BlockSize*scratchRing, memory.PageSize2M, memory.LocalWrite),
			buf:     make([]byte, cfg.BlockSize),
		}
		h.NIC.WatchRegion(poolReg.RKey, w.sig)
		tel.Scope(fmt.Sprintf("server.w%d", i)).CounterVar("served", &w.Served)
		s.workers = append(s.workers, w)
	}
	return s
}

// Register installs a handler.
func (s *Server) Register(id uint8, fn rpccore.Handler) { s.handlers[id] = fn }

// Start launches worker threads. Zone ranges are fixed at start from
// MaxClients (static mapping: the pool is fully formatted up front, which
// is precisely the design the paper criticizes).
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	for i, w := range s.workers {
		w := w
		s.Host.Spawn(fmt.Sprintf("rawrpc-w%d", i), w.run)
	}
}

func (w *worker) run(t *host.Thread) {
	for {
		n := w.sweep(t)
		if n == 0 {
			w.sig.WaitTimeout(t.P, w.s.Cfg.PollTimeout)
		}
	}
}

// sweep scans this worker's zones once, serving every valid request.
func (w *worker) sweep(t *host.Thread) int {
	// Zones are striped across workers so server CPU engages evenly even
	// when few clients are connected, and the scan is block-major (all
	// clients' slot 0, then slot 1, ...) so responses to different clients
	// interleave — the order a fair scanner produces, and the reason
	// RawWrite's response path cannot hide its QP-cache misses behind
	// per-client response bursts.
	s := w.s
	served := 0
	for b := 0; b < s.Cfg.BlocksPerClient; b++ {
		for z := w.idx; z < s.Cfg.MaxClients; z += s.Cfg.Workers {
			if z >= len(s.clients) || s.clients[z] == nil {
				continue
			}
			cs := s.clients[z]
			t.ReadMem(s.pool.ValidAddr(z, b), 1)
			block := s.pool.Block(z, b)
			if !rpcwire.Valid(block) {
				continue
			}
			payload, _, err := rpcwire.Decode(block)
			if err != nil {
				// Valid landed but the CRC failed: corruption past the NIC.
				// Treat as loss — the client's retry re-delivers.
				s.rel.CRCDrops++
				rpcwire.Clear(block)
				t.WriteMem(s.pool.ValidAddr(z, b), 1)
				continue
			}
			// Snapshot the CRC-validated frame before yielding: ReadMem,
			// ParseCost and the handler all advance virtual time, and an
			// in-flight duplicate write may overwrite the pool block.
			w.req = append(w.req[:0], payload...)
			t.ReadMem(s.pool.BlockAddr(z, b)+uint64(s.Cfg.BlockSize-rpcwire.TrailerSize-len(payload)),
				len(payload)+rpcwire.TrailerSize)
			t.Work(s.Cfg.ParseCost)
			s.serve(t, w, cs, b, w.req)
			rpcwire.Clear(block)
			t.WriteMem(s.pool.ValidAddr(z, b), 1)
			served++
			w.Served++
		}
	}
	return served
}

// serve runs the handler and writes the response into the client's
// response block for the same slot. Duplicates — retries after a timeout
// or a crash/rejoin re-post — are answered from the reply cache without
// re-running the handler.
func (s *Server) serve(t *host.Thread, w *worker, cs *clientState, slot int, req []byte) {
	hdr, body, err := rpcwire.ParseHeader(req)
	if err != nil {
		s.respond(t, w, cs, slot, w.buf[:rpcwire.PutHeader(w.buf, rpcwire.Header{ClientID: uint16(cs.zone)})], rpcwire.FlagError)
		return
	}
	n := rpcwire.PutHeader(w.buf, rpcwire.Header{ReqID: hdr.ReqID, Handler: hdr.Handler, ClientID: uint16(cs.zone)})
	if dup, rep, ready := s.replies.Admit(cs.id, hdr.ReqID); dup {
		s.rel.DedupHits++
		if ready {
			var flags byte
			if rep.Err {
				flags = rpcwire.FlagError
			}
			m := copy(w.buf[n:len(w.buf)-rpcwire.TrailerSize], rep.Payload)
			s.respond(t, w, cs, slot, w.buf[:n+m], flags)
		}
		return
	}
	var flags byte
	respLen := n
	if s.handlers[hdr.Handler] != nil {
		respLen = n + s.handlers[hdr.Handler](t, cs.id, body, w.buf[n:len(w.buf)-rpcwire.TrailerSize])
	} else {
		flags = rpcwire.FlagError
	}
	s.replies.Commit(cs.id, hdr.ReqID, w.buf[n:respLen], flags == rpcwire.FlagError)
	s.respond(t, w, cs, slot, w.buf[:respLen], flags)
}

// respond encodes the response into the worker's next scratch ring block
// and RDMA-writes it to the client's response slot.
func (s *Server) respond(t *host.Thread, w *worker, cs *clientState, slot int, msg []byte, flags byte) {
	blockOff := w.scratchIdx * s.Cfg.BlockSize
	w.scratchIdx = (w.scratchIdx + 1) % scratchRing
	block := w.scratch.Bytes()[blockOff : blockOff+s.Cfg.BlockSize]
	if err := rpcwire.Encode(block, msg, flags); err != nil {
		return
	}
	off, span := rpcwire.EncodedSpan(s.Cfg.BlockSize, len(msg))
	t.WriteMem(w.scratch.Base+uint64(blockOff+off), span)
	wr := nic.SendWR{
		Op:    nic.OpWrite,
		LKey:  w.scratch.LKey,
		LAddr: w.scratch.Base + uint64(blockOff+off),
		Len:   span,
		RKey:  cs.respRKey,
		RAddr: cs.respAddr + uint64(slot*s.Cfg.BlockSize+off),
	}
	if span <= s.Host.NIC.Cfg.MaxInline {
		wr.Inline = true
	}
	t.PostSend(cs.qp, wr)
}

// Served returns the total number of requests processed.
func (s *Server) Served() uint64 {
	var n uint64
	for _, w := range s.workers {
		n += w.Served
	}
	return n
}

// Conn is a RawWrite client endpoint.
type Conn struct {
	id    uint16
	h     *host.Host
	s     *Server
	qp    *nic.QP
	zone  int
	stage *memory.Region
	resp  *rpcwire.Pool
	sig   *sim.Signal
	slots []slot
	nfree int
	// respBuf holds a stable snapshot of the response frame being
	// delivered: the response block is live RDMA-writable memory, and the
	// ReadMem/WriteMem in Poll yield virtual time during which a late
	// duplicate response may overwrite the slot in place.
	respBuf []byte

	// Control-plane membership state (membership.go); nil/false for
	// connections admitted through the legacy Connect backdoor.
	mgr  *ctrlplane.Manager
	cp   *ctrlplane.Conn
	left bool
	// joinTenant is stamped into every join payload (membership.go).
	joinTenant uint16
}

type slot struct {
	busy   bool
	reqID  uint64
	msgLen int // encoded message length, for control-plane re-posting
}

// Connect registers a new client on the server and builds its endpoint.
// sig is the client thread's activity signal (woken on response arrival).
func (s *Server) Connect(ch *host.Host, sig *sim.Signal) *Conn {
	if len(s.clients) >= s.Cfg.MaxClients {
		panic("rawrpc: server full")
	}
	id := uint16(len(s.clients))
	// RC QP pair; both directions unsignaled (completion is the response).
	scq := s.Host.NIC.CreateCQ()
	ccq := ch.NIC.CreateCQ()
	sqp := s.Host.NIC.CreateQP(nic.RC, scq, scq)
	cqp := ch.NIC.CreateQP(nic.RC, ccq, ccq)
	if err := nic.Connect(sqp, cqp); err != nil {
		panic(err)
	}
	stage := ch.Mem.Register(s.Cfg.BlockSize*s.Cfg.BlocksPerClient,
		memory.PageSize2M, memory.LocalWrite|memory.RemoteRead)
	respReg := ch.Mem.Register(s.Cfg.BlockSize*(s.Cfg.BlocksPerClient+1),
		memory.PageSize2M, memory.LocalWrite|memory.RemoteWrite)
	cs := &clientState{
		id:       id,
		qp:       sqp,
		zone:     int(id),
		respAddr: respReg.Base,
		respRKey: respReg.RKey,
	}
	s.clients = append(s.clients, cs)
	conn := &Conn{
		id:    id,
		h:     ch,
		s:     s,
		qp:    cqp,
		zone:  int(id),
		stage: stage,
		resp:  rpcwire.NewPool(respReg, s.Cfg.BlockSize, s.Cfg.BlocksPerClient+1, 1),
		sig:   sig,
		slots: make([]slot, s.Cfg.BlocksPerClient),
		nfree: s.Cfg.BlocksPerClient,
	}
	ch.NIC.WatchRegion(respReg.RKey, sig)
	return conn
}

// SlotCount returns the request window size.
func (c *Conn) SlotCount() int { return len(c.slots) }

// Outstanding returns in-flight requests.
func (c *Conn) Outstanding() int { return len(c.slots) - c.nfree }

// TrySend posts one request into a free slot of the client's server zone.
func (c *Conn) TrySend(t *host.Thread, handler uint8, payload []byte, reqID uint64) bool {
	if c.left || c.nfree == 0 {
		return false
	}
	b := -1
	for i := range c.slots {
		if !c.slots[i].busy {
			b = i
			break
		}
	}
	msg := make([]byte, rpcwire.HeaderSize+len(payload))
	rpcwire.PutHeader(msg, rpcwire.Header{ReqID: reqID, Handler: handler, ClientID: c.id})
	copy(msg[rpcwire.HeaderSize:], payload)

	blockOff := b * c.s.Cfg.BlockSize
	block := c.stage.Bytes()[blockOff : blockOff+c.s.Cfg.BlockSize]
	if err := rpcwire.Encode(block, msg, 0); err != nil {
		return false
	}
	off, span := rpcwire.EncodedSpan(c.s.Cfg.BlockSize, len(msg))
	t.WriteMem(c.stage.Base+uint64(blockOff+off), span)
	wr := nic.SendWR{
		Op:    nic.OpWrite,
		LKey:  c.stage.LKey,
		LAddr: c.stage.Base + uint64(blockOff+off),
		Len:   span,
		RKey:  c.s.pool.RKey(),
		RAddr: c.s.pool.BlockAddr(c.zone, b) + uint64(off),
	}
	if span <= c.h.NIC.Cfg.MaxInline {
		wr.Inline = true
	}
	if err := t.PostSend(c.qp, wr); err != nil {
		return false
	}
	c.slots[b] = slot{busy: true, reqID: reqID, msgLen: len(msg)}
	c.nfree--
	return true
}

// Poll scans this connection's in-flight response slots.
func (c *Conn) Poll(t *host.Thread, fn func(rpccore.Response)) int {
	if c.left {
		return 0
	}
	got := 0
	for b := range c.slots {
		if !c.slots[b].busy {
			continue
		}
		t.ReadMem(c.resp.ValidAddr(0, b), 1)
		block := c.resp.Block(0, b)
		if !rpcwire.Valid(block) {
			continue
		}
		payload, flags, err := rpcwire.Decode(block)
		if err != nil {
			// Corrupted response: treat as loss, keep the slot in flight so
			// the deadline/retry layer recovers the call.
			c.s.rel.CRCDrops++
			rpcwire.Clear(block)
			t.WriteMem(c.resp.ValidAddr(0, b), 1)
			continue
		}
		// Snapshot the CRC-validated frame before yielding: ReadMem and
		// the Clear/WriteMem below advance virtual time, and a late
		// duplicate response write may overwrite the block under us.
		c.respBuf = append(c.respBuf[:0], payload...)
		t.ReadMem(c.resp.BlockAddr(0, b), len(payload)+rpcwire.TrailerSize)
		hdr, body, herr := rpcwire.ParseHeader(c.respBuf)
		if herr != nil || hdr.ReqID != c.slots[b].reqID {
			// A stale response from a previous occupant of this slot (a
			// zone reused across rejoin, or a late duplicate): the slot's
			// own response is still outstanding, so keep it busy.
			rpcwire.Clear(block)
			t.WriteMem(c.resp.ValidAddr(0, b), 1)
			continue
		}
		rpcwire.Clear(block)
		t.WriteMem(c.resp.ValidAddr(0, b), 1)
		c.slots[b].busy = false
		c.nfree++
		fn(rpccore.Response{ReqID: hdr.ReqID, Payload: body, Err: flags&rpcwire.FlagError != 0})
		got++
	}
	return got
}

// Resend re-posts the in-flight request identified by reqID from its
// staging block into the same server-pool slot (the rpccore.Resender hook
// behind Caller retries and hedges). Server-side dedup absorbs duplicate
// deliveries.
func (c *Conn) Resend(t *host.Thread, reqID uint64) bool {
	if c.left || c.qp.Err() != nil {
		return false
	}
	b := -1
	for i := range c.slots {
		if c.slots[i].busy && c.slots[i].reqID == reqID {
			b = i
			break
		}
	}
	if b < 0 {
		return false
	}
	off, span := rpcwire.EncodedSpan(c.s.Cfg.BlockSize, c.slots[b].msgLen)
	wr := nic.SendWR{
		Op:    nic.OpWrite,
		LKey:  c.stage.LKey,
		LAddr: c.stage.Base + uint64(b*c.s.Cfg.BlockSize+off),
		Len:   span,
		RKey:  c.s.pool.RKey(),
		RAddr: c.s.pool.BlockAddr(c.zone, b) + uint64(off),
	}
	if span <= c.h.NIC.Cfg.MaxInline {
		wr.Inline = true
	}
	return t.PostSend(c.qp, wr) == nil
}

var _ rpccore.Server = (*Server)(nil)
var _ rpccore.Conn = (*Conn)(nil)
var _ rpccore.Resender = (*Conn)(nil)
