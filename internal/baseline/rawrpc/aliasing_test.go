package rawrpc

import (
	"bytes"
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/rpcwire"
	"scalerpc/internal/sim"
)

// TestServeSnapshotSurvivesOverwrite pins the snapshot-before-yield rule:
// the request a handler sees must stay stable even when a new frame is
// RDMA-written into the same pool block while the handler is executing
// (a duplicate delivery or a stale fetch racing a slow handler). Before
// the worker snapshotted the CRC-validated frame, the handler's req slice
// aliased live pool memory and this test echoed the overwriting frame's
// bytes — a cross-request payload swap the chaos harness first caught as
// a duplicate execution with delivered corruption.
func TestServeSnapshotSurvivesOverwrite(t *testing.T) {
	c := cluster.New(cluster.Default(2))
	defer c.Close()
	cfg := DefaultServerConfig()
	cfg.Workers = 1
	cfg.MaxClients = 4
	s := NewServer(c.Hosts[0], cfg)
	// A deliberately slow echo: the 200 µs of handler work is the yield
	// window the overwrite below lands in.
	s.Register(1, func(th *host.Thread, clientID uint16, req []byte, out []byte) int {
		th.Work(200 * sim.Microsecond)
		return copy(out, req)
	})
	s.Start()

	sig := sim.NewSignal(c.Env)
	conn := s.Connect(c.Hosts[1], sig)

	p1 := bytes.Repeat([]byte{0x11}, 24)
	p2 := bytes.Repeat([]byte{0x22}, 24)

	var got []byte
	c.Hosts[1].Spawn("client", func(th *host.Thread) {
		if !conn.TrySend(th, 1, p1, 5) {
			t.Error("TrySend failed")
			return
		}
		for got == nil {
			conn.Poll(th, func(r rpccore.Response) {
				if r.ReqID == 5 {
					got = append([]byte(nil), r.Payload...)
				}
			})
			if got == nil {
				sig.WaitTimeout(th.P, 10*sim.Microsecond)
			}
		}
	})

	// While the handler is mid-Work (pickup completes well before 80 µs;
	// the handler runs until ~250 µs), land a different, validly framed
	// request in the same pool block — exactly what an in-flight duplicate
	// write does. The handler's view of request 5 must not change.
	c.Hosts[0].Spawn("overwriter", func(th *host.Thread) {
		th.P.Sleep(80 * sim.Microsecond)
		msg := make([]byte, rpcwire.HeaderSize+len(p2))
		rpcwire.PutHeader(msg, rpcwire.Header{ReqID: 6, Handler: 1, ClientID: conn.id})
		copy(msg[rpcwire.HeaderSize:], p2)
		if err := rpcwire.Encode(s.pool.Block(conn.zone, 0), msg, 0); err != nil {
			t.Errorf("encode overwrite: %v", err)
		}
	})

	c.Env.RunUntil(5 * sim.Millisecond)
	if got == nil {
		t.Fatal("no response to request 5")
	}
	if !bytes.Equal(got, p1) {
		t.Fatalf("request 5 echoed %x, want %x — handler read the overwriting frame", got, p1)
	}
}
