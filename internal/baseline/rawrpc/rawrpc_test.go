package rawrpc_test

import (
	"bytes"
	"testing"

	"scalerpc/internal/baseline/rawrpc"
	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/sim"
)

func echoHandler(t *host.Thread, clientID uint16, req []byte, out []byte) int {
	t.Work(100)
	return copy(out, req)
}

func TestEchoRoundTrip(t *testing.T) {
	c := cluster.New(cluster.Default(2))
	defer c.Close()
	cfg := rawrpc.DefaultServerConfig()
	cfg.Workers = 2
	cfg.MaxClients = 8
	s := rawrpc.NewServer(c.Hosts[0], cfg)
	s.Register(1, echoHandler)
	s.Start()

	sig := sim.NewSignal(c.Env)
	conn := s.Connect(c.Hosts[1], sig)

	var got []byte
	c.Hosts[1].Spawn("client", func(th *host.Thread) {
		if !conn.TrySend(th, 1, []byte("ping-payload"), 77) {
			t.Error("TrySend failed")
			return
		}
		for got == nil {
			conn.Poll(th, func(r rpccore.Response) {
				if r.ReqID != 77 {
					t.Errorf("ReqID = %d", r.ReqID)
				}
				if r.Err {
					t.Error("unexpected error response")
				}
				got = append([]byte(nil), r.Payload...)
			})
			if got == nil {
				sig.WaitTimeout(th.P, 10*sim.Microsecond)
			}
		}
	})
	c.Env.RunUntil(5 * sim.Millisecond)
	if !bytes.Equal(got, []byte("ping-payload")) {
		t.Fatalf("response = %q", got)
	}
}

func TestUnknownHandlerReturnsError(t *testing.T) {
	c := cluster.New(cluster.Default(2))
	defer c.Close()
	cfg := rawrpc.DefaultServerConfig()
	cfg.Workers = 1
	cfg.MaxClients = 4
	s := rawrpc.NewServer(c.Hosts[0], cfg)
	s.Start()
	sig := sim.NewSignal(c.Env)
	conn := s.Connect(c.Hosts[1], sig)
	var isErr, done bool
	c.Hosts[1].Spawn("client", func(th *host.Thread) {
		conn.TrySend(th, 200, []byte("x"), 1)
		for !done {
			conn.Poll(th, func(r rpccore.Response) { isErr, done = r.Err, true })
			if !done {
				sig.WaitTimeout(th.P, 10*sim.Microsecond)
			}
		}
	})
	c.Env.RunUntil(5 * sim.Millisecond)
	if !done || !isErr {
		t.Fatalf("done=%v err=%v, want error response", done, isErr)
	}
}

func TestSlotWindowLimitsOutstanding(t *testing.T) {
	c := cluster.New(cluster.Default(2))
	defer c.Close()
	cfg := rawrpc.DefaultServerConfig()
	cfg.Workers = 1
	cfg.MaxClients = 4
	cfg.BlocksPerClient = 4
	s := rawrpc.NewServer(c.Hosts[0], cfg)
	s.Register(1, echoHandler)
	s.Start()
	sig := sim.NewSignal(c.Env)
	conn := s.Connect(c.Hosts[1], sig)
	c.Hosts[1].Spawn("client", func(th *host.Thread) {
		sent := 0
		for conn.TrySend(th, 1, []byte("y"), uint64(sent)) {
			sent++
		}
		if sent != 4 {
			t.Errorf("sent %d before window closed, want 4", sent)
		}
		if conn.Outstanding() != 4 || conn.SlotCount() != 4 {
			t.Errorf("outstanding=%d slots=%d", conn.Outstanding(), conn.SlotCount())
		}
	})
	c.Env.RunUntil(1 * sim.Millisecond)
}

func TestManyClientsManyRequests(t *testing.T) {
	c := cluster.New(cluster.Default(3))
	defer c.Close()
	cfg := rawrpc.DefaultServerConfig()
	cfg.Workers = 4
	cfg.MaxClients = 32
	s := rawrpc.NewServer(c.Hosts[0], cfg)
	s.Register(1, echoHandler)
	s.Start()

	horizon := 2 * sim.Millisecond
	results := make([]rpccore.DriverStats, 2)
	for hi := 1; hi <= 2; hi++ {
		hi := hi
		sig := sim.NewSignal(c.Env)
		var conns []rpccore.Conn
		for i := 0; i < 8; i++ {
			conns = append(conns, s.Connect(c.Hosts[hi], sig))
		}
		c.Hosts[hi].Spawn("driver", func(th *host.Thread) {
			results[hi-1] = rpccore.RunDriver(th, conns, rpccore.DriverConfig{
				Batch: 4, Handler: 1, PayloadSize: 32, Seed: uint64(hi),
			}, sig, func() bool { return th.P.Now() >= horizon })
		})
	}
	c.Env.RunUntil(horizon + sim.Millisecond)
	total := results[0].Completed + results[1].Completed
	if total < 1000 {
		t.Fatalf("completed only %d ops in 2ms across 16 clients", total)
	}
	if results[0].BatchLat.Count() == 0 {
		t.Fatal("no batch latencies recorded")
	}
	med := results[0].BatchLat.Median()
	if med < 2000 || med > 200000 {
		t.Fatalf("median batch latency %d ns implausible", med)
	}
	if s.Served() != total {
		// Some responses may still be in flight at the horizon.
		if s.Served() < total {
			t.Fatalf("server served %d < client completions %d", s.Served(), total)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() uint64 {
		c := cluster.New(cluster.Default(2))
		defer c.Close()
		cfg := rawrpc.DefaultServerConfig()
		cfg.Workers = 2
		cfg.MaxClients = 8
		s := rawrpc.NewServer(c.Hosts[0], cfg)
		s.Register(1, echoHandler)
		s.Start()
		sig := sim.NewSignal(c.Env)
		var conns []rpccore.Conn
		for i := 0; i < 4; i++ {
			conns = append(conns, s.Connect(c.Hosts[1], sig))
		}
		var st rpccore.DriverStats
		c.Hosts[1].Spawn("driver", func(th *host.Thread) {
			st = rpccore.RunDriver(th, conns, rpccore.DriverConfig{
				Batch: 2, Handler: 1, PayloadSize: 32, Seed: 9,
			}, sig, func() bool { return th.P.Now() >= sim.Millisecond })
		})
		c.Env.RunUntil(2 * sim.Millisecond)
		return st.Completed
	}
	a, b := run(), run()
	if a != b || a == 0 {
		t.Fatalf("runs differ: %d vs %d", a, b)
	}
}
