// Tenant gating for the RawWrite baseline. RawWrite has no scheduler to
// weight, so the only tenant lever is the zone footprint itself: every
// admitted client consumes one statically mapped zone, and a graceful
// leave keeps it mapped (the design the paper criticizes), so a tenant's
// zone quota is charged for the lifetime of the identity, not of the
// connection. Only an ungraceful quarantine — the server giving the
// client up for dead — releases the charge.
package rawrpc

// TenantGate is the subset of the tenant manager's surface the RawWrite
// server needs. Every RawWrite connection is reported pinned: a static
// zone is a permanent reservation, exactly what a reserved zone is on the
// ScaleRPC side. Declared locally so rawrpc does not depend on the tenant
// package; internal/tenant's Manager satisfies it structurally.
type TenantGate interface {
	// AdmitConn decides whether the tenant may take one more zone. nil
	// admits; ctrlplane.ErrAdmitQueue parks the dial in the admission
	// queue; any other error rejects. Must be side-effect free (called in
	// the pre-admission gate, again in Accept/Resume, and on every queue
	// retry).
	AdmitConn(tenant uint16, pinned bool) (pinnedGranted bool, err error)
	ConnOpened(tenant uint16, pinned bool)
	ConnClosed(tenant uint16, pinned bool)
}

// SetTenantGate installs the tenant manager. Must be called before
// clients join; nil (the default) disables tenant gating.
func (s *Server) SetTenantGate(g TenantGate) { s.gate = g }

// tenantOpen charges the client's zone to its tenant, at most once per
// charge/release cycle.
func (s *Server) tenantOpen(cs *clientState) {
	if s.gate != nil && !cs.counted {
		cs.counted = true
		s.gate.ConnOpened(cs.tenant, true)
	}
}

// tenantClose releases the zone charge; safe on every teardown path (only
// the first after a charge counts).
func (s *Server) tenantClose(cs *clientState) {
	if s.gate != nil && cs.counted {
		cs.counted = false
		s.gate.ConnClosed(cs.tenant, true)
	}
}
