// Elastic membership for the RawWrite baseline, mirroring the ScaleRPC
// control-plane integration so the churn experiment compares like with
// like. The structural difference is on-message: RawWrite's statically
// mapped pool has no scheduler to regroup, so a departed client's zone
// keeps its static mapping (and the server keeps sweeping it) until the
// control plane drops the client outright — the footprint never shrinks
// on a graceful leave, which is exactly the design the paper criticizes.
package rawrpc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"scalerpc/internal/ctrlplane"
	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/rpcwire"
	"scalerpc/internal/sim"
)

// ServiceName is the control-plane service a RawWrite server registers.
const ServiceName = "rawrpc"

// Join request payload: respAddr u64 | respRKey u32 | tenant u16.
const joinReqSize = 8 + 4 + 2

// Join/resume response payload: id u16 (the zone is the id — static map).
const joinRespSize = 2

// ErrNotManaged is returned by Rejoin on a connection that was admitted
// through the legacy Connect backdoor rather than the control plane.
var ErrNotManaged = errors.New("rawrpc: connection not admitted through the control plane")

// BindControlPlane registers this server with its host's control-plane
// manager so clients can Join in-band.
func (s *Server) BindControlPlane(m *ctrlplane.Manager) {
	if m.Host() != s.Host {
		panic("rawrpc: control-plane manager runs on a different host")
	}
	m.RegisterService(ServiceName, &ctrlAdapter{s: s})
}

type ctrlAdapter struct{ s *Server }

// PreAdmit gates a dial before any QP is built. A parked or quarantined
// identity that still holds its zone charge passes for free: its quota was
// never released, so readmitting it cannot exceed the tenant's budget.
func (a *ctrlAdapter) PreAdmit(peer int, service string, payload []byte) error {
	s := a.s
	if s.gate == nil || len(payload) != joinReqSize {
		return nil
	}
	if cs := s.findParked(payload); cs != nil && cs.counted {
		return nil
	}
	_, err := s.gate.AdmitConn(binary.LittleEndian.Uint16(payload[12:]), true)
	return err
}

// Accept admits a new client on the next static zone (reusing zones of
// dropped clients). A cold rejoin with the same response region reclaims
// the still-parked identity.
func (a *ctrlAdapter) Accept(t *host.Thread, peer int, qp *nic.QP, payload []byte) ([]byte, uint64, error) {
	s := a.s
	if len(payload) != joinReqSize {
		return nil, 0, fmt.Errorf("rawrpc: join payload is %d bytes, want %d", len(payload), joinReqSize)
	}
	tenant := binary.LittleEndian.Uint16(payload[12:])
	if cs := s.findParked(payload); cs != nil {
		// A reclaimed identity keeps its original tenant (and, if parked,
		// its still-live zone charge); a different tenant presenting an
		// aliased region must not inherit either.
		if s.gate != nil && cs.tenant != tenant {
			return nil, 0, fmt.Errorf("rawrpc: identity owned by another tenant")
		}
		if s.gate != nil && !cs.counted {
			if _, err := s.gate.AdmitConn(cs.tenant, true); err != nil {
				return nil, 0, err
			}
		}
		cs.parked = false
		if cs.limbo {
			cs.limbo = false
			for i, id := range s.limbo {
				if id == cs.id {
					s.limbo = append(s.limbo[:i], s.limbo[i+1:]...)
					break
				}
			}
		}
		cs.qp = qp
		s.tenantOpen(cs)
		return joinResp(cs), uint64(cs.id) + 1, nil
	}
	if s.gate != nil {
		if _, err := s.gate.AdmitConn(tenant, true); err != nil {
			return nil, 0, err
		}
	}
	id, err := s.allocID()
	if err != nil {
		return nil, 0, err
	}
	cs := &clientState{
		id:       id,
		qp:       qp,
		zone:     int(id),
		respAddr: binary.LittleEndian.Uint64(payload),
		respRKey: binary.LittleEndian.Uint32(payload[8:]),
		tenant:   tenant,
	}
	if int(id) == len(s.clients) {
		s.clients = append(s.clients, cs)
	} else {
		// A reused zone may hold stale valid blocks from its previous
		// occupant; clear them so the sweep doesn't serve ghosts, and
		// drop any dedup state left under the reused id.
		for b := 0; b < s.Cfg.BlocksPerClient; b++ {
			rpcwire.Clear(s.pool.Block(cs.zone, b))
		}
		s.replies.Drop(id)
		s.clients[id] = cs
	}
	s.tenantOpen(cs)
	return joinResp(cs), uint64(id) + 1, nil
}

// Resume reactivates a parked client. Cached pairs are fungible, so the
// caller is identified by its region payload and its id becomes the
// connection's new handle.
func (a *ctrlAdapter) Resume(t *host.Thread, peer int, qp *nic.QP, payload []byte, handle uint64) ([]byte, uint64, error) {
	s := a.s
	cs := s.findParked(payload)
	if cs == nil {
		return nil, 0, errors.New("rawrpc: no parked client matches the resume payload")
	}
	if s.gate != nil && len(payload) == joinReqSize &&
		cs.tenant != binary.LittleEndian.Uint16(payload[12:]) {
		return nil, 0, errors.New("rawrpc: identity owned by another tenant")
	}
	if s.gate != nil && !cs.counted {
		if _, err := s.gate.AdmitConn(cs.tenant, true); err != nil {
			return nil, 0, err
		}
	}
	cs.parked = false
	if cs.limbo {
		cs.limbo = false
		for i, id := range s.limbo {
			if id == cs.id {
				s.limbo = append(s.limbo[:i], s.limbo[i+1:]...)
				break
			}
		}
	}
	cs.qp = qp
	s.tenantOpen(cs)
	return joinResp(cs), uint64(cs.id) + 1, nil
}

// limboCap bounds the identity quarantine (see Closed).
const limboCap = 64

// Closed handles departures. A graceful leave only marks the client
// parked — the zone stays mapped and swept. Every other reason — lease
// expiry, QP error, cache teardown of a parked entry — quarantines the
// identity: the id/zone and the reply cache's dedup window stay reserved
// so a crash-recovered client dialing back in (matched by its regions)
// resumes exactly-once execution. The quarantine is FIFO-bounded;
// overflow releases the oldest identity for real.
func (a *ctrlAdapter) Closed(peer int, handle uint64, reason ctrlplane.CloseReason) {
	s := a.s
	if handle == 0 || handle > uint64(len(s.clients)) {
		return
	}
	cs := s.clients[handle-1]
	if cs == nil {
		return
	}
	if reason == ctrlplane.CloseLeave {
		// The zone stays mapped and swept, so its tenant charge stays live
		// too: a gracefully departed bulk tenant keeps eating its quota,
		// which is the honest accounting of RawWrite's non-shrinking
		// footprint.
		cs.parked = true
		return
	}
	if cs.limbo {
		return
	}
	if reason == ctrlplane.CloseError && cs.qp.Err() == nil {
		// Orphaned pair: the client already rebound onto a fresh QP.
		return
	}
	if reason == ctrlplane.CloseTeardown && !cs.parked {
		// Teardown of an orphaned cached pair whose identity has since
		// resumed elsewhere.
		return
	}
	// The server gave the client up for dead: release the tenant charge so
	// the quota can readmit it (a resurrected identity is re-charged on its
	// way back in through Accept/Resume).
	s.tenantClose(cs)
	cs.parked = false
	cs.limbo = true
	s.limbo = append(s.limbo, cs.id)
	for len(s.limbo) > limboCap {
		id := s.limbo[0]
		s.limbo = s.limbo[1:]
		s.releaseID(id)
	}
}

// Forget administratively releases a parked or quarantined identity: the
// id returns to the pool and its dedup window is dropped. Active clients
// are untouched.
func (s *Server) Forget(id uint16) {
	if int(id) >= len(s.clients) {
		return
	}
	cs := s.clients[id]
	if cs == nil || (!cs.parked && !cs.limbo) {
		return
	}
	s.tenantClose(cs)
	cs.parked = false
	cs.limbo = true
	for i, l := range s.limbo {
		if l == id {
			s.limbo = append(s.limbo[:i], s.limbo[i+1:]...)
			break
		}
	}
	s.releaseID(id)
}

// releaseID frees a quarantined identity for good: the id returns to the
// pool and the dedup window is dropped (the freed id starts a fresh reqID
// space on its next owner).
func (s *Server) releaseID(id uint16) {
	cs := s.clients[id]
	if cs == nil || !cs.limbo {
		return
	}
	s.clients[id] = nil
	s.freeIDs = append(s.freeIDs, id)
	s.replies.Drop(id)
}

func joinResp(cs *clientState) []byte {
	resp := make([]byte, joinRespSize)
	binary.LittleEndian.PutUint16(resp, cs.id)
	return resp
}

func (s *Server) allocID() (uint16, error) {
	if n := len(s.freeIDs); n > 0 {
		id := s.freeIDs[n-1]
		s.freeIDs = s.freeIDs[:n-1]
		return id, nil
	}
	if len(s.clients) >= s.Cfg.MaxClients {
		return 0, fmt.Errorf("rawrpc: server full (%d clients)", s.Cfg.MaxClients)
	}
	return uint16(len(s.clients)), nil
}

// findParked returns the parked or quarantined client whose response
// region matches the join payload, scanning in id order for determinism.
// The region is the durable identity: a crash-recovered client dialing
// cold presents the same region and reclaims its id (and dedup window).
func (s *Server) findParked(payload []byte) *clientState {
	if len(payload) != joinReqSize {
		return nil
	}
	respAddr := binary.LittleEndian.Uint64(payload)
	respRKey := binary.LittleEndian.Uint32(payload[8:])
	for _, cs := range s.clients {
		if cs != nil && (cs.parked || cs.limbo) && cs.respAddr == respAddr && cs.respRKey == respRKey {
			return cs
		}
	}
	return nil
}

// Join admits a client through the control plane under the default tenant:
// register the regions, dial the server's manager, and build a Conn on the
// dialed QP. t must run on the client host.
func (s *Server) Join(t *host.Thread, dir *ctrlplane.Directory, sig *sim.Signal) (*Conn, error) {
	return s.JoinTenant(t, dir, sig, 0)
}

// JoinTenant is Join with explicit tenant attribution: the server's tenant
// gate (if any) charges the zone to the tenant at admission.
func (s *Server) JoinTenant(t *host.Thread, dir *ctrlplane.Directory, sig *sim.Signal, tenant uint16) (*Conn, error) {
	ch := t.Host
	mgr := dir.Manager(ch.ID)
	if mgr == nil {
		return nil, fmt.Errorf("rawrpc: no control-plane manager on host %d", ch.ID)
	}
	stage := ch.Mem.Register(s.Cfg.BlockSize*s.Cfg.BlocksPerClient,
		memory.PageSize2M, memory.LocalWrite|memory.RemoteRead)
	respReg := ch.Mem.Register(s.Cfg.BlockSize*(s.Cfg.BlocksPerClient+1),
		memory.PageSize2M, memory.LocalWrite|memory.RemoteWrite)
	c := &Conn{
		h:          ch,
		s:          s,
		stage:      stage,
		resp:       rpcwire.NewPool(respReg, s.Cfg.BlockSize, s.Cfg.BlocksPerClient+1, 1),
		sig:        sig,
		slots:      make([]slot, s.Cfg.BlocksPerClient),
		nfree:      s.Cfg.BlocksPerClient,
		mgr:        mgr,
		joinTenant: tenant,
	}
	cp, err := mgr.Dial(t, s.Host.ID, ServiceName, c.joinPayload())
	if err != nil {
		return nil, err
	}
	if err := c.adoptDial(cp); err != nil {
		return nil, err
	}
	ch.NIC.WatchRegion(respReg.RKey, sig)
	return c, nil
}

// ID returns the server-assigned client id (also the static zone).
func (c *Conn) ID() uint16 { return c.id }

// Left reports whether the connection is currently departed.
func (c *Conn) Left() bool { return c.left }

// Leave departs gracefully: the QP pair parks in the connection cache.
// RawWrite has no scheduler to tell — the zone stays mapped and requests
// already written there are still served (responses land in the response
// region and are picked up after Rejoin).
func (c *Conn) Leave(t *host.Thread) {
	if c.cp == nil || c.left {
		return
	}
	c.cp.Close(t)
	c.left = true
}

// Rejoin re-admits a departed (or failed) connection. A cache hit resumes
// under the same id; a cold handshake may assign a new id (new zone), in
// which case unanswered staged requests are re-posted into the new zone.
func (c *Conn) Rejoin(t *host.Thread) error {
	if c.mgr == nil {
		return ErrNotManaged
	}
	if !c.left && c.qp.Err() == nil {
		return nil
	}
	oldID := c.id
	cp, err := c.mgr.Dial(t, c.s.Host.ID, ServiceName, c.joinPayload())
	if err != nil {
		return err
	}
	if err := c.adoptDial(cp); err != nil {
		return err
	}
	c.left = false
	if c.id != oldID {
		c.repostStaged(t)
	}
	return nil
}

func (c *Conn) joinPayload() []byte {
	p := make([]byte, joinReqSize)
	binary.LittleEndian.PutUint64(p, c.resp.Region.Base)
	binary.LittleEndian.PutUint32(p[8:], c.resp.Region.RKey)
	binary.LittleEndian.PutUint16(p[12:], c.joinTenant)
	return p
}

func (c *Conn) adoptDial(cp *ctrlplane.Conn) error {
	if len(cp.Payload) != joinRespSize {
		return fmt.Errorf("rawrpc: join response is %d bytes, want %d", len(cp.Payload), joinRespSize)
	}
	c.cp = cp
	c.qp = cp.QP
	c.id = binary.LittleEndian.Uint16(cp.Payload)
	c.zone = int(c.id)
	return nil
}

// repostStaged RDMA-writes every busy slot's staged request into the new
// zone after a cold rejoin changed the id. The server derives identity
// from the zone, so the staged bytes need no restamp; the old zone's
// leftovers are cleared when that id is reused.
func (c *Conn) repostStaged(t *host.Thread) {
	for b := range c.slots {
		if !c.slots[b].busy {
			continue
		}
		blockOff := b * c.s.Cfg.BlockSize
		off, span := rpcwire.EncodedSpan(c.s.Cfg.BlockSize, c.slots[b].msgLen)
		wr := nic.SendWR{
			Op:    nic.OpWrite,
			LKey:  c.stage.LKey,
			LAddr: c.stage.Base + uint64(blockOff+off),
			Len:   span,
			RKey:  c.s.pool.RKey(),
			RAddr: c.s.pool.BlockAddr(c.zone, b) + uint64(off),
		}
		if span <= c.h.NIC.Cfg.MaxInline {
			wr.Inline = true
		}
		t.PostSend(c.qp, wr)
	}
}
