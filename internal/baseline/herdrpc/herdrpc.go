// Package herdrpc implements the HERD RPC baseline (Kalia et al.,
// SIGCOMM'14; Table 2 of the paper): clients post requests with UC writes
// into a statically mapped server pool, and the server replies with UD
// sends. One UD QP per server worker keeps the server's outbound path off
// the QP-context cache treadmill, but the static request pool still grows
// with the client count — the reason HERD degrades (more gently than
// RawWrite) at scale in Figure 8.
package herdrpc

import (
	"fmt"

	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/rpcwire"
	"scalerpc/internal/sim"
	"scalerpc/internal/telemetry"
)

// ServerConfig sizes a HERD server.
type ServerConfig struct {
	Workers         int
	BlockSize       int // ≤ 4 KB: responses must fit the UD MTU
	BlocksPerClient int
	MaxClients      int
	PollTimeout     sim.Duration
	ParseCost       sim.Duration
	// ClientOverhead is extra per-operation client CPU (UD recv
	// management, address handles, CQ doorbells) charged by Conn methods.
	ClientOverhead sim.Duration
}

// DefaultServerConfig mirrors the paper's setup.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		Workers:         10,
		BlockSize:       4096,
		BlocksPerClient: 16,
		MaxClients:      512,
		PollTimeout:     20 * sim.Microsecond,
		ParseCost:       60,
		ClientOverhead:  350,
	}
}

type clientState struct {
	id     uint16
	zone   int
	ucQP   *nic.QP // server-side endpoint of the client's UC connection
	dstNIC int     // client UD QP location
	dstQPN uint32
}

type worker struct {
	s          *Server
	idx        int
	sig        *sim.Signal
	udQP       *nic.QP
	udCQ       *nic.CQ
	scratch    *memory.Region
	scratchIdx int
	buf        []byte
	Served     uint64
}

const scratchRing = 64

// Server is a HERD RPC server.
type Server struct {
	Cfg  ServerConfig
	Host *host.Host

	pool     *rpcwire.Pool
	handlers [256]rpccore.Handler
	clients  []*clientState
	workers  []*worker
	started  bool
}

// NewServer builds the statically mapped pool and the per-worker UD QPs.
func NewServer(h *host.Host, cfg ServerConfig) *Server {
	poolReg := h.Mem.Register(cfg.BlockSize*cfg.BlocksPerClient*cfg.MaxClients,
		memory.PageSize2M, memory.LocalWrite|memory.RemoteWrite)
	s := &Server{
		Cfg:  cfg,
		Host: h,
		pool: rpcwire.NewPool(poolReg, cfg.BlockSize, cfg.BlocksPerClient, cfg.MaxClients),
	}
	var tel telemetry.Scope
	if reg := h.Tel.Registry(); reg != nil {
		tel = reg.UniqueScope("herdrpc")
	}
	for i := 0; i < cfg.Workers; i++ {
		cq := h.NIC.CreateCQ()
		w := &worker{
			s:       s,
			idx:     i,
			sig:     sim.NewSignal(h.Env),
			udCQ:    cq,
			udQP:    h.NIC.CreateQP(nic.UD, cq, cq),
			scratch: h.Mem.Register(cfg.BlockSize*scratchRing, memory.PageSize2M, memory.LocalWrite),
			buf:     make([]byte, cfg.BlockSize),
		}
		h.NIC.WatchRegion(poolReg.RKey, w.sig)
		tel.Scope(fmt.Sprintf("server.w%d", i)).CounterVar("served", &w.Served)
		s.workers = append(s.workers, w)
	}
	return s
}

// Register installs a handler.
func (s *Server) Register(id uint8, fn rpccore.Handler) { s.handlers[id] = fn }

// Start launches the worker threads.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	for i, w := range s.workers {
		w := w
		s.Host.Spawn(fmt.Sprintf("herd-w%d", i), w.run)
	}
}

func (w *worker) run(t *host.Thread) {
	s := w.s
	for {
		served := 0
		// Block-major scan: responses to different clients interleave.
		for b := 0; b < s.Cfg.BlocksPerClient; b++ {
			for z := w.idx; z < s.Cfg.MaxClients; z += s.Cfg.Workers {
				if z >= len(s.clients) || s.clients[z] == nil {
					continue
				}
				cs := s.clients[z]
				t.ReadMem(s.pool.ValidAddr(z, b), 1)
				block := s.pool.Block(z, b)
				if !rpcwire.Valid(block) {
					continue
				}
				payload, _, err := rpcwire.Decode(block)
				if err != nil {
					rpcwire.Clear(block)
					continue
				}
				t.ReadMem(s.pool.BlockAddr(z, b), len(payload)+rpcwire.TrailerSize)
				t.Work(s.Cfg.ParseCost)
				w.serve(t, cs, b, payload)
				rpcwire.Clear(block)
				t.WriteMem(s.pool.ValidAddr(z, b), 1)
				served++
				w.Served++
			}
		}
		if served == 0 {
			w.sig.WaitTimeout(t.P, s.Cfg.PollTimeout)
		}
	}
}

// serve executes the handler and UD-sends the response. The response
// header's ClientID field carries the request slot so the client can free
// its window entry.
func (w *worker) serve(t *host.Thread, cs *clientState, slot int, req []byte) {
	s := w.s
	hdr, body, err := rpcwire.ParseHeader(req)
	var flags byte
	n := rpcwire.PutHeader(w.buf, rpcwire.Header{ReqID: hdr.ReqID, Handler: hdr.Handler, ClientID: uint16(slot)})
	respLen := n
	if err == nil && s.handlers[hdr.Handler] != nil {
		respLen = n + s.handlers[hdr.Handler](t, cs.id, body, w.buf[n:])
	} else {
		flags = rpcwire.FlagError
	}
	blockOff := w.scratchIdx * s.Cfg.BlockSize
	w.scratchIdx = (w.scratchIdx + 1) % scratchRing
	copy(w.scratch.Bytes()[blockOff:], w.buf[:respLen])
	t.WriteMem(w.scratch.Base+uint64(blockOff), respLen)
	wr := nic.SendWR{
		Op:     nic.OpSend,
		LKey:   w.scratch.LKey,
		LAddr:  w.scratch.Base + uint64(blockOff),
		Len:    respLen,
		DstNIC: cs.dstNIC,
		DstQPN: cs.dstQPN,
	}
	if flags&rpcwire.FlagError != 0 {
		wr.Imm = 1 // error indicator travels as the send immediate
	}
	if respLen <= s.Host.NIC.Cfg.MaxInline {
		wr.Inline = true
	}
	t.PostSend(w.udQP, wr)
}

// Served returns total requests processed.
func (s *Server) Served() uint64 {
	var n uint64
	for _, w := range s.workers {
		n += w.Served
	}
	return n
}

// Conn is a HERD client endpoint: a UC QP for requests plus a UD QP for
// responses.
type Conn struct {
	id    uint16
	h     *host.Host
	s     *Server
	ucQP  *nic.QP
	udQP  *nic.QP
	udCQ  *nic.CQ
	stage *memory.Region
	recv  *memory.Region
	slots []slot
	nfree int
	zone  int
	// recvSlots rotates receive buffers.
	recvSlot int
}

type slot struct {
	busy  bool
	reqID uint64
}

// Connect admits a client.
func (s *Server) Connect(ch *host.Host, sig *sim.Signal) *Conn {
	if len(s.clients) >= s.Cfg.MaxClients {
		panic("herdrpc: server full")
	}
	id := uint16(len(s.clients))
	// UC pair for the request path.
	scq := s.Host.NIC.CreateCQ()
	ccq := ch.NIC.CreateCQ()
	sqp := s.Host.NIC.CreateQP(nic.UC, scq, scq)
	cqp := ch.NIC.CreateQP(nic.UC, ccq, ccq)
	if err := nic.Connect(sqp, cqp); err != nil {
		panic(err)
	}
	// Client UD endpoint for the response path.
	udCQ := ch.NIC.CreateCQ()
	udQP := ch.NIC.CreateQP(nic.UD, udCQ, udCQ)
	udCQ.Sig = sig

	stage := ch.Mem.Register(s.Cfg.BlockSize*s.Cfg.BlocksPerClient, memory.PageSize2M,
		memory.LocalWrite|memory.RemoteRead)
	recvReg := ch.Mem.Register(s.Cfg.BlockSize*(s.Cfg.BlocksPerClient*2), memory.PageSize2M,
		memory.LocalWrite)
	cs := &clientState{id: id, zone: int(id), ucQP: sqp, dstNIC: ch.NIC.ID(), dstQPN: udQP.QPN}
	s.clients = append(s.clients, cs)
	conn := &Conn{
		id:    id,
		h:     ch,
		s:     s,
		ucQP:  cqp,
		udQP:  udQP,
		udCQ:  udCQ,
		stage: stage,
		recv:  recvReg,
		slots: make([]slot, s.Cfg.BlocksPerClient),
		nfree: s.Cfg.BlocksPerClient,
		zone:  int(id),
	}
	// Pre-post the receive window.
	nRecv := s.Cfg.BlocksPerClient * 2
	for i := 0; i < nRecv; i++ {
		udQP.PostRecv(nic.RecvWR{
			WRID: uint64(i),
			LKey: recvReg.LKey, LAddr: recvReg.Base + uint64(i*s.Cfg.BlockSize), Len: s.Cfg.BlockSize,
		})
	}
	return conn
}

// SlotCount returns the request window size.
func (c *Conn) SlotCount() int { return len(c.slots) }

// Outstanding returns in-flight requests.
func (c *Conn) Outstanding() int { return len(c.slots) - c.nfree }

// TrySend UC-writes a request into the client's static server zone.
func (c *Conn) TrySend(t *host.Thread, handler uint8, payload []byte, reqID uint64) bool {
	if c.nfree == 0 {
		return false
	}
	b := -1
	for i := range c.slots {
		if !c.slots[i].busy {
			b = i
			break
		}
	}
	msg := make([]byte, rpcwire.HeaderSize+len(payload))
	rpcwire.PutHeader(msg, rpcwire.Header{ReqID: reqID, Handler: handler, ClientID: c.id})
	copy(msg[rpcwire.HeaderSize:], payload)
	blockOff := b * c.s.Cfg.BlockSize
	block := c.stage.Bytes()[blockOff : blockOff+c.s.Cfg.BlockSize]
	if err := rpcwire.Encode(block, msg, 0); err != nil {
		return false
	}
	off, span := rpcwire.EncodedSpan(c.s.Cfg.BlockSize, len(msg))
	t.WriteMem(c.stage.Base+uint64(blockOff+off), span)
	wr := nic.SendWR{
		Op:    nic.OpWrite,
		LKey:  c.stage.LKey,
		LAddr: c.stage.Base + uint64(blockOff+off),
		Len:   span,
		RKey:  c.s.pool.RKey(),
		RAddr: c.s.pool.BlockAddr(c.zone, b) + uint64(off),
	}
	if span <= c.h.NIC.Cfg.MaxInline {
		wr.Inline = true
	}
	if err := t.PostSend(c.ucQP, wr); err != nil {
		return false
	}
	c.slots[b] = slot{busy: true, reqID: reqID}
	c.nfree--
	return true
}

// Poll drains the UD response CQ, reposting consumed receives.
func (c *Conn) Poll(t *host.Thread, fn func(rpccore.Response)) int {
	t.Work(c.s.Cfg.ClientOverhead)
	cqes := t.PollCQ(c.udCQ, 16)
	got := 0
	for _, e := range cqes {
		if e.Status != nic.CQOK {
			continue
		}
		// Locate the receive buffer and parse the response.
		addr := c.recv.Base + e.WRID*uint64(c.s.Cfg.BlockSize)
		t.ReadMem(addr, e.ByteLen)
		buf := c.recv.Bytes()[e.WRID*uint64(c.s.Cfg.BlockSize):]
		hdr, body, err := rpcwire.ParseHeader(buf[:e.ByteLen])
		// Repost the consumed receive.
		t.PostRecv(c.udQP, nic.RecvWR{WRID: e.WRID, LKey: c.recv.LKey, LAddr: addr, Len: c.s.Cfg.BlockSize})
		if err != nil {
			continue
		}
		b := int(hdr.ClientID)
		if b < 0 || b >= len(c.slots) || !c.slots[b].busy || c.slots[b].reqID != hdr.ReqID {
			continue // stale or duplicate
		}
		c.slots[b] = slot{}
		c.nfree++
		fn(rpccore.Response{ReqID: hdr.ReqID, Payload: body, Err: e.ImmValid && e.Imm == 1})
		got++
	}
	return got
}

var _ rpccore.Server = (*Server)(nil)
var _ rpccore.Conn = (*Conn)(nil)
