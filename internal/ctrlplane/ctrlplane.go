// Package ctrlplane makes RDMA connection establishment a first-class,
// costed, in-band operation. Each host runs a connection Manager that
// serves an RDMA-CM-style handshake over a bootstrap UD QP: a dialing
// client creates an RC QP, walks it RESET→INIT→RTR→RTS with the modeled
// ModifyQP verb latencies, and exchanges QPN/PSN (plus an opaque service
// payload carrying rkeys) with the server's manager, which admits the
// connection through a registered Service. Server-side setup runs
// serialized on the manager thread — the control-plane bottleneck Swift
// identifies for elastic workloads.
//
// On top of the handshake the manager layers lease-based liveness (clients
// with active connections send aggregated per-peer keepalives; a server
// evicts every connection of a peer whose lease lapses — crashes injected
// by internal/faults silence the keepalives, so stale state tears down
// deterministically) and a connection cache (a graceful close parks the
// still-paired RTS QP halves on both sides; a later dial to the same peer
// and service resumes the pair in one round trip, skipping QP setup; an
// LRU cap and idle timeout bound the parked set, in the spirit of
// RDMAvisor's connection sharing service).
package ctrlplane

import (
	"errors"
	"fmt"
	"sort"

	"scalerpc/internal/fabric"
	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
	"scalerpc/internal/telemetry"
)

// Config holds the manager parameters.
type Config struct {
	RecvDepth int // bootstrap UD receive window
	SlotBytes int // per-message buffer size

	SweepInterval sim.Duration // manager housekeeping period
	LeaseInterval sim.Duration // keepalive send period per peer
	LeaseTTL      sim.Duration // silence after which a peer's conns expire

	CacheCap    int          // max parked connections per side
	IdleTimeout sim.Duration // parked connections older than this tear down

	DialTimeout sim.Duration // per-attempt handshake reply timeout
	DialRetries int          // resends before a dial fails

	// AdmitQueueTimeout bounds how long a dial parked by a Gatekeeper's
	// ErrAdmitQueue may wait for quota; entries still over quota after
	// this age are rejected. Queued entries are re-examined every sweep.
	AdmitQueueTimeout sim.Duration

	// Detector, when non-nil, replaces fixed-TTL lease expiry with the
	// adaptive phi-accrual detector and its degradation ladder (see
	// detector.go). LeaseTTL stays as the safety net for peers without
	// enough arrival history. Nil keeps the fixed-TTL behaviour
	// byte-identical.
	Detector *DetectorConfig
}

// DefaultConfig returns the standard control-plane timing parameters.
func DefaultConfig() Config {
	return Config{
		RecvDepth:         128,
		SlotBytes:         256,
		SweepInterval:     25_000,
		LeaseInterval:     100_000,
		LeaseTTL:          400_000,
		CacheCap:          256,
		IdleTimeout:       5_000_000,
		DialTimeout:       200_000,
		DialRetries:       3,
		AdmitQueueTimeout: 400_000,
	}
}

// CloseReason tells a Service why a connection went away.
type CloseReason int

// Close reasons.
const (
	// CloseLeave is a graceful client close: the QP pair parks in the
	// connection cache and the handle may Resume later.
	CloseLeave CloseReason = iota
	// CloseExpired means the peer's lease lapsed (missed keepalives —
	// typically a crash); the QP is destroyed.
	CloseExpired
	// CloseTeardown means the cache discarded a parked connection (idle
	// timeout or capacity eviction); the handle will not resume.
	CloseTeardown
	// CloseError means the connection's QP entered the error state.
	CloseError
)

func (r CloseReason) String() string {
	switch r {
	case CloseLeave:
		return "leave"
	case CloseExpired:
		return "expired"
	case CloseTeardown:
		return "teardown"
	case CloseError:
		return "error"
	}
	return "?"
}

// Service is the server-side application endpoint a connection attaches
// to. The manager owns the QP lifecycle; services only learn about
// admissions and departures.
type Service interface {
	// Accept admits a new connection whose server-side QP is already RTS
	// and paired. payload is the opaque data from the connect request
	// (typically the client's rkeys); the returned payload travels back in
	// the accept. handle identifies the connection in Resume/Closed.
	Accept(t *host.Thread, peer int, qp *nic.QP, payload []byte) (resp []byte, handle uint64, err error)
	// Resume reactivates a connection previously parked by a graceful
	// close; qp is the same, still-paired QP. Cached connections are
	// fungible — a client may resume a pair parked by a different
	// connection to the same (peer, service) — so the service identifies
	// the caller from payload and returns the handle the connection is
	// now bound to (the passed handle is the one recorded when the pair
	// parked, which may belong to someone else by now).
	Resume(t *host.Thread, peer int, qp *nic.QP, payload []byte, handle uint64) (resp []byte, newHandle uint64, err error)
	// Closed reports a departure. For every reason except CloseLeave the
	// QP is being destroyed and the handle will not return.
	Closed(peer int, handle uint64, reason CloseReason)
}

// ErrAdmitQueue is the sentinel a Gatekeeper returns to park a dial in the
// manager's admission queue instead of rejecting it outright: the request
// is retried every sweep until the gate clears, then accepted, or until
// AdmitQueueTimeout lapses, then rejected.
var ErrAdmitQueue = errors.New("ctrlplane: admission queued")

// Gatekeeper is an optional extension a Service implements to screen dials
// before any QP is created: admission control. PreAdmit sees the connect
// (or resume) request's opaque payload and returns nil to proceed,
// ErrAdmitQueue (possibly wrapped) to park the dial in the admission
// queue, or any other error to reject with that reason. PreAdmit must be
// side-effect free — the manager calls it again on every queue retry, and
// Accept/Resume still runs afterwards as the authoritative admission.
type Gatekeeper interface {
	PreAdmit(peer int, service string, payload []byte) error
}

// Event is one entry of the manager's connection event log. The log is the
// determinism surface: a fixed seed must reproduce it exactly.
type Event struct {
	At     sim.Time
	Kind   string // accept, resume, leave, expire, evict, reject, idle_teardown, cap_evict
	Peer   int
	QPN    uint32
	Handle uint64
}

// Directory resolves a host ID to its Manager — the out-of-band address
// resolution (DNS + the well-known CM port) a real deployment has before
// any RDMA connection exists.
type Directory struct {
	mgrs map[int]*Manager
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory { return &Directory{mgrs: map[int]*Manager{}} }

// Manager returns the manager registered for the host, or nil.
func (d *Directory) Manager(hostID int) *Manager { return d.mgrs[hostID] }

// serverConn is an active inbound connection.
type serverConn struct {
	peer      int
	svc       string
	qp        *nic.QP
	handle    uint64
	clientQPN uint32
	acceptMsg wireMsg // replayed on duplicate connect requests
}

// srvCacheEntry is a parked inbound connection.
type srvCacheEntry struct {
	peer      int
	svc       string
	qp        *nic.QP
	handle    uint64
	clientQPN uint32
	parkedAt  sim.Time
}

// cliCacheEntry is a parked outbound connection.
type cliCacheEntry struct {
	qp        *nic.QP
	remoteQPN uint32
	parkedAt  sim.Time
}

type cacheKey struct {
	peer int
	svc  string
}

type dupKey struct {
	peer      int
	clientQPN uint32
}

// dialWait parks a dialing thread until its handshake reply arrives.
type dialWait struct {
	sig  *sim.Signal
	done bool
	resp wireMsg
}

// Stats are the manager's telemetry counters (registered under
// ctrlplane<host>.*).
type Stats struct {
	DialsCold     uint64
	DialsCached   uint64
	DialsFailed   uint64
	Accepts       uint64
	Resumes       uint64
	Rejects       uint64
	Leaves        uint64
	LeaseExpiries uint64
	Evictions     uint64 // QP-error evictions
	CacheHits     uint64
	CacheMisses   uint64
	IdleTeardowns uint64
	CapEvictions  uint64
	KeepalivesTx  uint64
	KeepalivesRx  uint64
	AdmitQueued   uint64 // dials parked by a Gatekeeper
	AdmitReleased uint64 // parked dials later admitted
	AdmitTimeouts uint64 // parked dials rejected at AdmitQueueTimeout

	// Failure-detector counters (detector.*). Suspicions/Demotions count
	// ladder escalations; DetectorEvictions counts peers the adaptive
	// detector declared dead; FalseEvictions counts lease/detector
	// evictions of peers the registered ground truth says were alive
	// (counted in fixed-TTL mode too, so the two modes are comparable);
	// Readmits counts quarantined peers admitted back; Probes and PingsRx
	// count detector pings sent and received.
	DetectorSuspicions uint64
	DetectorDemotions  uint64
	DetectorEvictions  uint64
	FalseEvictions     uint64
	DetectorReadmits   uint64
	DetectorProbes     uint64
	PingsRx            uint64
}

// admitEntry is one dial parked in the admission queue (FIFO).
type admitEntry struct {
	peer int
	msg  wireMsg
	at   sim.Time
}

const sendRing = 32

// Manager is the per-host connection manager: it serves the handshake for
// inbound connections, dials outbound ones, and sweeps leases and caches.
type Manager struct {
	h   *host.Host
	cfg Config
	dir *Directory

	udQP    *nic.QP
	cq      *nic.CQ
	recvReg *memory.Region
	sendReg *memory.Region
	sendIdx int

	services map[string]Service

	nextReq uint64
	nextPSN uint64
	pending map[uint64]*dialWait

	conns    map[uint32]*serverConn // active inbound, by server QPN
	dups     map[dupKey]uint32      // connect-request dedup → server QPN
	srvCache map[uint32]*srvCacheEntry

	admitQueue []admitEntry    // dials parked by a Gatekeeper, FIFO
	admitKeys  map[dupKey]bool // dedup for queued dials (resends)

	cliActive map[uint32]*Conn // active outbound, by client QPN
	cliCache  map[cacheKey][]*cliCacheEntry
	cliCached int

	leases map[int]sim.Time // inbound: last keepalive per peer
	lastKA map[int]sim.Time // outbound: last keepalive sent per peer

	// Adaptive failure detection (nil maps/fields when Config.Detector is
	// nil). det holds per-peer ladder state; detRNG jitters quarantine
	// lockouts; groundTruth, when set by a harness, reports whether a peer
	// is genuinely down (false-eviction accounting); onPeerState hooks let
	// data planes react to ladder transitions.
	det         map[int]*peerDetector
	detRNG      *stats.RNG
	detScope    telemetry.Scope
	groundTruth func(peer int) bool
	onPeerState []func(peer int, old, new PeerState)

	// Events is the deterministic connection event log.
	Events []Event

	Stats       Stats
	activeGauge float64
	cachedGauge float64
	coldHist    *telemetry.Histogram
	cachedHist  *telemetry.Histogram
	trace       *telemetry.Trace

	started bool
}

// NewManager builds a manager for the host and registers it in the
// directory. Call Start to launch its service thread.
func NewManager(h *host.Host, cfg Config, dir *Directory) *Manager {
	cq := h.NIC.CreateCQ()
	m := &Manager{
		h:         h,
		cfg:       cfg,
		dir:       dir,
		udQP:      h.NIC.CreateQP(nic.UD, cq, cq),
		cq:        cq,
		recvReg:   h.Mem.Register(cfg.RecvDepth*cfg.SlotBytes, memory.PageSize2M, memory.LocalWrite),
		sendReg:   h.Mem.Register(sendRing*cfg.SlotBytes, memory.PageSize2M, memory.LocalWrite),
		services:  make(map[string]Service),
		nextPSN:   uint64(h.ID)*1_000_000 + 1,
		pending:   make(map[uint64]*dialWait),
		conns:     make(map[uint32]*serverConn),
		dups:      make(map[dupKey]uint32),
		srvCache:  make(map[uint32]*srvCacheEntry),
		admitKeys: make(map[dupKey]bool),
		cliActive: make(map[uint32]*Conn),
		cliCache:  make(map[cacheKey][]*cliCacheEntry),
		leases:    make(map[int]sim.Time),
		lastKA:    make(map[int]sim.Time),
	}
	for i := 0; i < cfg.RecvDepth; i++ {
		m.udQP.PostRecv(nic.RecvWR{
			WRID: uint64(i), LKey: m.recvReg.LKey,
			LAddr: m.recvReg.Base + uint64(i*cfg.SlotBytes), Len: cfg.SlotBytes,
		})
	}
	sc := telemetry.Scope{}
	if reg := h.Tel.Registry(); reg != nil {
		sc = reg.Scope(fmt.Sprintf("ctrlplane%d", h.ID))
	}
	sc.CounterVar("dials_cold", &m.Stats.DialsCold)
	sc.CounterVar("dials_cached", &m.Stats.DialsCached)
	sc.CounterVar("dials_failed", &m.Stats.DialsFailed)
	sc.CounterVar("accepts", &m.Stats.Accepts)
	sc.CounterVar("resumes", &m.Stats.Resumes)
	sc.CounterVar("rejects", &m.Stats.Rejects)
	sc.CounterVar("leaves", &m.Stats.Leaves)
	sc.CounterVar("lease_expiries", &m.Stats.LeaseExpiries)
	sc.CounterVar("evictions", &m.Stats.Evictions)
	sc.CounterVar("cache_hits", &m.Stats.CacheHits)
	sc.CounterVar("cache_misses", &m.Stats.CacheMisses)
	sc.CounterVar("idle_teardowns", &m.Stats.IdleTeardowns)
	sc.CounterVar("cap_evictions", &m.Stats.CapEvictions)
	sc.CounterVar("keepalives_tx", &m.Stats.KeepalivesTx)
	sc.CounterVar("keepalives_rx", &m.Stats.KeepalivesRx)
	sc.CounterVar("admit_queued", &m.Stats.AdmitQueued)
	sc.CounterVar("admit_released", &m.Stats.AdmitReleased)
	sc.CounterVar("admit_timeouts", &m.Stats.AdmitTimeouts)
	sc.CounterVar("detector.suspicions", &m.Stats.DetectorSuspicions)
	sc.CounterVar("detector.demotions", &m.Stats.DetectorDemotions)
	sc.CounterVar("detector.evictions", &m.Stats.DetectorEvictions)
	sc.CounterVar("detector.false_evictions", &m.Stats.FalseEvictions)
	sc.CounterVar("detector.readmits", &m.Stats.DetectorReadmits)
	sc.CounterVar("detector.probes", &m.Stats.DetectorProbes)
	sc.CounterVar("detector.pings_rx", &m.Stats.PingsRx)
	sc.GaugeVar("active", &m.activeGauge)
	sc.GaugeVar("cached", &m.cachedGauge)
	m.coldHist = sc.Histogram("setup_cold_ns")
	m.cachedHist = sc.Histogram("setup_cached_ns")
	m.trace = sc.Trace()
	if cfg.Detector != nil {
		// The RNG split happens only on detector-enabled managers so
		// existing fixed-TTL runs keep their exact RNG streams.
		m.det = make(map[int]*peerDetector)
		m.detRNG = h.RNG.Split()
		m.detScope = sc.Scope("detector")
	}
	dir.mgrs[h.ID] = m
	return m
}

// RegisterService installs the server-side endpoint for a service name.
func (m *Manager) RegisterService(name string, svc Service) { m.services[name] = svc }

// Host returns the manager's host.
func (m *Manager) Host() *host.Host { return m.h }

// PeerLease reports when the last keepalive (or handshake) from peer was
// observed, and whether one has been observed at all. Failure detectors
// above the control plane (e.g. the shard director) compare the age against
// Config.LeaseTTL instead of running their own heartbeat protocol.
func (m *Manager) PeerLease(peer int) (sim.Time, bool) {
	at, ok := m.leases[peer]
	return at, ok
}

// Start launches the manager thread (handshake serving + sweeps).
func (m *Manager) Start() {
	if m.started {
		return
	}
	m.started = true
	m.h.Spawn("ctrlmgr", m.run)
}

func (m *Manager) event(kind string, peer int, qpn uint32, handle uint64) {
	m.Events = append(m.Events, Event{At: m.h.Env.Now(), Kind: kind, Peer: peer, QPN: qpn, Handle: handle})
	if m.trace.Enabled {
		m.trace.Emit(m.h.Env.Now(), "ctrl_"+kind,
			telemetry.A("host", int64(m.h.ID)), telemetry.A("peer", int64(peer)),
			telemetry.A("qpn", int64(qpn)))
	}
}

// send serializes and UD-sends one control message to the peer's manager.
func (m *Manager) send(t *host.Thread, dst int, msg *wireMsg) {
	peer := m.dir.Manager(dst)
	if peer == nil {
		return
	}
	off := m.sendIdx * m.cfg.SlotBytes
	m.sendIdx = (m.sendIdx + 1) % sendRing
	n := msg.encode(m.sendReg.Bytes()[off:])
	t.WriteMem(m.sendReg.Base+uint64(off), n)
	wr := nic.SendWR{
		Op:   nic.OpSend,
		LKey: m.sendReg.LKey, LAddr: m.sendReg.Base + uint64(off), Len: n,
		DstNIC: dst, DstQPN: peer.udQP.QPN,
		Class: fabric.ClassControl,
	}
	if msg.kind == kindKeepalive || msg.kind == kindPing {
		wr.Class = fabric.ClassKeepalive
	}
	if n <= m.h.NIC.Cfg.MaxInline {
		wr.Inline = true
	}
	t.PostSend(m.udQP, wr)
}

// run is the manager thread: drain handshake traffic, then sweep leases
// and caches on the configured period.
func (m *Manager) run(t *host.Thread) {
	next := t.P.Now() + m.cfg.SweepInterval
	for {
		wait := next - t.P.Now()
		if wait < 1 {
			wait = 1
		}
		for _, e := range t.WaitCQ(m.cq, 32, wait) {
			m.handleCQE(t, e)
		}
		if t.P.Now() >= next {
			m.sweep(t)
			next = t.P.Now() + m.cfg.SweepInterval
		}
	}
}

func (m *Manager) handleCQE(t *host.Thread, e nic.CQE) {
	slot := int(e.WRID)
	addr := m.recvReg.Base + uint64(slot*m.cfg.SlotBytes)
	var msg wireMsg
	var err error
	if e.Status == nic.CQOK {
		t.ReadMem(addr, e.ByteLen)
		off := slot * m.cfg.SlotBytes
		msg, err = decodeMsg(m.recvReg.Bytes()[off : off+e.ByteLen])
	}
	m.udQP.PostRecv(nic.RecvWR{WRID: e.WRID, LKey: m.recvReg.LKey, LAddr: addr, Len: m.cfg.SlotBytes})
	if e.Status != nic.CQOK || err != nil {
		return
	}
	t.Work(t.Host.Cfg.BaseOpCost)
	switch msg.kind {
	case kindConnReq:
		m.onConnReq(t, e.SrcNIC, &msg)
	case kindResume:
		m.onResume(t, e.SrcNIC, &msg)
	case kindAccept, kindReject:
		if w := m.pending[msg.reqID]; w != nil && !w.done {
			w.done = true
			w.resp = msg
			w.sig.Broadcast()
		}
	case kindReady:
		// The client reached RTS; nothing further to do in the model.
	case kindKeepalive:
		m.Stats.KeepalivesRx++
		m.leases[e.SrcNIC] = t.P.Now()
		m.detArrival(e.SrcNIC, t.P.Now())
	case kindPing:
		// Failure-detector probe: answer immediately so the suspecting
		// side gets a fresh arrival sample without waiting a LeaseInterval.
		m.Stats.PingsRx++
		m.Stats.KeepalivesTx++
		m.send(t, e.SrcNIC, &wireMsg{kind: kindKeepalive})
	case kindDisconnect:
		m.onDisconnect(t, e.SrcNIC, &msg)
	}
}

// onConnReq serves a cold connect: QP creation and the INIT/RTR/RTS walk
// run serialized on this thread, so concurrent dials queue behind each
// other — the Swift control-plane bottleneck, visible in the connsetup
// experiment as cold latency growing with dial concurrency.
func (m *Manager) onConnReq(t *host.Thread, peer int, msg *wireMsg) {
	dk := dupKey{peer, msg.qpn}
	if qpn, ok := m.dups[dk]; ok {
		if sc := m.conns[qpn]; sc != nil {
			// Duplicate of a request we already accepted (our accept was
			// lost or slow): replay it.
			replay := sc.acceptMsg
			m.send(t, peer, &replay)
		}
		return
	}
	if m.admitKeys[dk] {
		return // resend of a dial already parked in the admission queue
	}
	if m.quarantineReject(t, peer, msg) {
		return
	}
	svc := m.services[msg.svc]
	if svc == nil {
		m.reject(t, peer, msg, "unknown service "+msg.svc)
		return
	}
	if err := m.gateCheck(svc, peer, msg); err != nil {
		if errors.Is(err, ErrAdmitQueue) {
			m.enqueueAdmit(t, peer, msg, dk)
		} else {
			m.reject(t, peer, msg, err.Error())
		}
		return
	}
	m.acceptConn(t, peer, msg, svc)
}

// acceptConn runs the post-gate half of a cold connect: QP setup, service
// admission, and the accept reply.
func (m *Manager) acceptConn(t *host.Thread, peer int, msg *wireMsg, svc Service) {
	dk := dupKey{peer, msg.qpn}
	scq := m.h.NIC.CreateCQ()
	sqp := t.CreateQP(nic.RC, scq, scq)
	psn := m.allocPSN()
	if err := m.walkToRTS(t, sqp, peer, msg.qpn, msg.psn, psn); err != nil {
		m.h.NIC.DestroyQP(sqp)
		m.reject(t, peer, msg, err.Error())
		return
	}
	resp, handle, err := svc.Accept(t, peer, sqp, msg.payload)
	if err != nil {
		m.h.NIC.DestroyQP(sqp)
		m.reject(t, peer, msg, err.Error())
		return
	}
	sc := &serverConn{
		peer: peer, svc: msg.svc, qp: sqp, handle: handle, clientQPN: msg.qpn,
		acceptMsg: wireMsg{kind: kindAccept, reqID: msg.reqID, qpn: sqp.QPN, psn: psn, payload: resp},
	}
	m.conns[sqp.QPN] = sc
	m.dups[dk] = sqp.QPN
	m.leases[peer] = t.P.Now()
	m.detArrival(peer, t.P.Now())
	m.Stats.Accepts++
	m.event("accept", peer, sqp.QPN, handle)
	reply := sc.acceptMsg
	m.send(t, peer, &reply)
}

// onResume reactivates a parked connection in one round trip: no QP work,
// just service readmission.
func (m *Manager) onResume(t *host.Thread, peer int, msg *wireMsg) {
	if m.quarantineReject(t, peer, msg) {
		return
	}
	if svc := m.services[msg.svc]; svc != nil {
		dk := dupKey{peer, msg.qpn2}
		if m.admitKeys[dk] {
			return // resend of a resume already parked in the admission queue
		}
		if err := m.gateCheck(svc, peer, msg); err != nil {
			if errors.Is(err, ErrAdmitQueue) {
				m.enqueueAdmit(t, peer, msg, dk)
			} else {
				m.reject(t, peer, msg, err.Error())
			}
			return
		}
	}
	m.resumeConn(t, peer, msg)
}

// resumeConn runs the post-gate half of a cached resume.
func (m *Manager) resumeConn(t *host.Thread, peer int, msg *wireMsg) {
	ent := m.srvCache[msg.qpn]
	if ent == nil || ent.peer != peer || ent.svc != msg.svc ||
		ent.clientQPN != msg.qpn2 || ent.qp.Err() != nil {
		m.reject(t, peer, msg, "not cached")
		return
	}
	svc := m.services[msg.svc]
	if svc == nil {
		m.reject(t, peer, msg, "unknown service "+msg.svc)
		return
	}
	delete(m.srvCache, msg.qpn)
	resp, handle, err := svc.Resume(t, peer, ent.qp, msg.payload, ent.handle)
	if err != nil {
		m.h.NIC.DestroyQP(ent.qp)
		m.reject(t, peer, msg, err.Error())
		return
	}
	sc := &serverConn{
		peer: peer, svc: msg.svc, qp: ent.qp, handle: handle, clientQPN: ent.clientQPN,
		acceptMsg: wireMsg{kind: kindAccept, reqID: msg.reqID, qpn: ent.qp.QPN, flag: 1, payload: resp},
	}
	m.conns[ent.qp.QPN] = sc
	m.dups[dupKey{peer, ent.clientQPN}] = ent.qp.QPN
	m.leases[peer] = t.P.Now()
	m.detArrival(peer, t.P.Now())
	m.Stats.Resumes++
	m.event("resume", peer, ent.qp.QPN, handle)
	reply := sc.acceptMsg
	m.send(t, peer, &reply)
}

func (m *Manager) reject(t *host.Thread, peer int, msg *wireMsg, reason string) {
	m.Stats.Rejects++
	m.event("reject", peer, msg.qpn, 0)
	m.send(t, peer, &wireMsg{kind: kindReject, reqID: msg.reqID, reason: reason})
}

// gateCheck consults the service's Gatekeeper, if it has one.
func (m *Manager) gateCheck(svc Service, peer int, msg *wireMsg) error {
	if gk, ok := svc.(Gatekeeper); ok {
		return gk.PreAdmit(peer, msg.svc, msg.payload)
	}
	return nil
}

// enqueueAdmit parks a gated dial in the FIFO admission queue.
func (m *Manager) enqueueAdmit(t *host.Thread, peer int, msg *wireMsg, dk dupKey) {
	m.admitKeys[dk] = true
	m.admitQueue = append(m.admitQueue, admitEntry{peer: peer, msg: *msg, at: t.P.Now()})
	m.Stats.AdmitQueued++
	m.event("admit_queue", peer, msg.qpn, 0)
}

// drainAdmitQueue retries parked dials in FIFO order: each entry's gate is
// re-checked (an earlier release this pass consumes quota the next entry
// sees), released entries run the normal accept/resume path, and entries
// still gated past AdmitQueueTimeout are rejected.
func (m *Manager) drainAdmitQueue(t *host.Thread) {
	if len(m.admitQueue) == 0 {
		return
	}
	now := t.P.Now()
	kept := m.admitQueue[:0]
	for i := range m.admitQueue {
		e := m.admitQueue[i]
		dk := dupKey{e.peer, e.msg.qpn}
		if e.msg.kind == kindResume {
			dk = dupKey{e.peer, e.msg.qpn2}
		}
		svc := m.services[e.msg.svc]
		if svc == nil {
			delete(m.admitKeys, dk)
			m.reject(t, e.peer, &e.msg, "unknown service "+e.msg.svc)
			continue
		}
		err := m.gateCheck(svc, e.peer, &e.msg)
		switch {
		case err == nil:
			delete(m.admitKeys, dk)
			m.Stats.AdmitReleased++
			m.event("admit_release", e.peer, e.msg.qpn, 0)
			if e.msg.kind == kindResume {
				m.resumeConn(t, e.peer, &e.msg)
			} else {
				m.acceptConn(t, e.peer, &e.msg, svc)
			}
		case errors.Is(err, ErrAdmitQueue):
			if now-e.at > m.cfg.AdmitQueueTimeout {
				delete(m.admitKeys, dk)
				m.Stats.AdmitTimeouts++
				m.reject(t, e.peer, &e.msg, "admission queue timeout")
			} else {
				kept = append(kept, e)
			}
		default:
			delete(m.admitKeys, dk)
			m.reject(t, e.peer, &e.msg, err.Error())
		}
	}
	m.admitQueue = kept
}

// onDisconnect retires an active inbound connection: a graceful one parks
// in the server cache (and may Resume), anything else tears down.
func (m *Manager) onDisconnect(t *host.Thread, peer int, msg *wireMsg) {
	sc := m.conns[msg.qpn]
	if sc == nil || sc.peer != peer {
		return
	}
	delete(m.conns, msg.qpn)
	delete(m.dups, dupKey{sc.peer, sc.clientQPN})
	svc := m.services[sc.svc]
	if msg.flag == 1 && sc.qp.Err() == nil {
		if svc != nil {
			svc.Closed(peer, sc.handle, CloseLeave)
		}
		m.srvCache[sc.qp.QPN] = &srvCacheEntry{
			peer: sc.peer, svc: sc.svc, qp: sc.qp, handle: sc.handle,
			clientQPN: sc.clientQPN, parkedAt: t.P.Now(),
		}
		m.Stats.Leaves++
		m.event("leave", peer, sc.qp.QPN, sc.handle)
		m.enforceSrvCap()
		return
	}
	if svc != nil {
		svc.Closed(peer, sc.handle, CloseTeardown)
	}
	m.h.NIC.DestroyQP(sc.qp)
	m.event("teardown", peer, sc.qp.QPN, sc.handle)
}

// enforceSrvCap LRU-evicts parked inbound connections beyond the cap.
func (m *Manager) enforceSrvCap() {
	for len(m.srvCache) > m.cfg.CacheCap {
		qpn := m.oldestSrvEntry()
		ent := m.srvCache[qpn]
		delete(m.srvCache, qpn)
		if svc := m.services[ent.svc]; svc != nil {
			svc.Closed(ent.peer, ent.handle, CloseTeardown)
		}
		m.h.NIC.DestroyQP(ent.qp)
		m.Stats.CapEvictions++
		m.event("cap_evict", ent.peer, qpn, ent.handle)
	}
}

// oldestSrvEntry picks the LRU victim deterministically (oldest parkedAt,
// lowest QPN on ties).
func (m *Manager) oldestSrvEntry() uint32 {
	var victim uint32
	first := true
	for qpn, ent := range m.srvCache {
		if first || ent.parkedAt < m.srvCache[victim].parkedAt ||
			(ent.parkedAt == m.srvCache[victim].parkedAt && qpn < victim) {
			victim = qpn
			first = false
		}
	}
	return victim
}

// sweep is the periodic housekeeping pass: keepalives out, lease expiry,
// QP-error eviction, and cache aging. All map walks iterate in sorted key
// order so the event log is deterministic.
func (m *Manager) sweep(t *host.Thread) {
	now := t.P.Now()

	// Aggregated keepalives: one per peer that has at least one active
	// outbound connection, every LeaseInterval.
	peerSet := map[int]bool{}
	for _, c := range m.cliActive {
		peerSet[c.peer] = true
	}
	for _, peer := range sortedPeers(peerSet) {
		if now-m.lastKA[peer] >= m.cfg.LeaseInterval {
			m.lastKA[peer] = now
			m.Stats.KeepalivesTx++
			m.send(t, peer, &wireMsg{kind: kindKeepalive})
		}
	}

	// Advance the adaptive detector's ladder (no-op in fixed-TTL mode)
	// before expiry so a peer crossing the eviction rung this sweep loses
	// its connections this sweep.
	m.detectorSweep(t, now)

	// Inbound lease expiry and QP-error eviction. falseCounted dedups the
	// per-peer false-eviction accounting across a peer's connections.
	var falseCounted map[int]bool
	for _, qpn := range sortedQPNs(m.conns) {
		sc := m.conns[qpn]
		var reason CloseReason
		switch {
		case sc.qp.Err() != nil:
			reason = CloseError
			m.Stats.Evictions++
		case m.peerExpired(sc.peer, now):
			reason = CloseExpired
			m.Stats.LeaseExpiries++
			if m.det == nil && m.groundTruth != nil && !m.groundTruth(sc.peer) && !falseCounted[sc.peer] {
				// Fixed-TTL mode: the detector path counts its own false
				// evictions at the ladder transition.
				if falseCounted == nil {
					falseCounted = make(map[int]bool)
				}
				falseCounted[sc.peer] = true
				m.Stats.FalseEvictions++
			}
		default:
			continue
		}
		delete(m.conns, qpn)
		delete(m.dups, dupKey{sc.peer, sc.clientQPN})
		if svc := m.services[sc.svc]; svc != nil {
			svc.Closed(sc.peer, sc.handle, reason)
		}
		m.h.NIC.DestroyQP(sc.qp)
		if reason == CloseError {
			m.event("evict", sc.peer, qpn, sc.handle)
		} else {
			m.event("expire", sc.peer, qpn, sc.handle)
		}
	}

	// Evicted peers enter quarantine once their connections are gone:
	// rejoin attempts are rejected until a seeded-jitter backoff lapses.
	m.quarantineEvicted(now)

	// Outbound connections whose QP errored: drop tracking (the owning
	// data-plane endpoint observes the error through its own polling).
	for _, qpn := range sortedConnQPNs(m.cliActive) {
		if m.cliActive[qpn].QP.Err() != nil {
			delete(m.cliActive, qpn)
		}
	}

	// Cache aging, both sides.
	for _, qpn := range sortedCacheQPNs(m.srvCache) {
		ent := m.srvCache[qpn]
		if now-ent.parkedAt > m.cfg.IdleTimeout || ent.qp.Err() != nil {
			delete(m.srvCache, qpn)
			if svc := m.services[ent.svc]; svc != nil {
				svc.Closed(ent.peer, ent.handle, CloseTeardown)
			}
			m.h.NIC.DestroyQP(ent.qp)
			m.Stats.IdleTeardowns++
			m.event("idle_teardown", ent.peer, qpn, ent.handle)
		}
	}
	for _, key := range sortedCacheKeys(m.cliCache) {
		kept := m.cliCache[key][:0]
		for _, ent := range m.cliCache[key] {
			if now-ent.parkedAt > m.cfg.IdleTimeout || ent.qp.Err() != nil {
				m.h.NIC.DestroyQP(ent.qp)
				m.cliCached--
				m.Stats.IdleTeardowns++
				m.event("idle_teardown", key.peer, ent.qp.QPN, 0)
			} else {
				kept = append(kept, ent)
			}
		}
		if len(kept) == 0 {
			delete(m.cliCache, key)
		} else {
			m.cliCache[key] = kept
		}
	}

	// Admission-queue retries run after expiry/aging so quota freed this
	// sweep is immediately available to parked dials.
	m.drainAdmitQueue(t)

	m.activeGauge = float64(len(m.conns) + len(m.cliActive))
	m.cachedGauge = float64(len(m.srvCache) + m.cliCached)
}

func sortedPeers(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

func sortedQPNs(mp map[uint32]*serverConn) []uint32 {
	out := make([]uint32, 0, len(mp))
	for q := range mp {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedConnQPNs(mp map[uint32]*Conn) []uint32 {
	out := make([]uint32, 0, len(mp))
	for q := range mp {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedCacheQPNs(mp map[uint32]*srvCacheEntry) []uint32 {
	out := make([]uint32, 0, len(mp))
	for q := range mp {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedCacheKeys(mp map[cacheKey][]*cliCacheEntry) []cacheKey {
	out := make([]cacheKey, 0, len(mp))
	for k := range mp {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].peer != out[j].peer {
			return out[i].peer < out[j].peer
		}
		return out[i].svc < out[j].svc
	})
	return out
}

func (m *Manager) allocPSN() uint64 {
	m.nextPSN++
	return m.nextPSN
}

func (m *Manager) allocReq() uint64 {
	m.nextReq++
	return uint64(m.h.ID)<<32 | m.nextReq
}

// Conn is the client-side handle of an established connection.
type Conn struct {
	// QP is the connected, RTS client-side queue pair.
	QP *nic.QP
	// Payload is the service's response payload from the accept.
	Payload []byte
	// Cached reports whether the dial was satisfied by resuming a parked
	// connection.
	Cached bool

	mgr       *Manager
	peer      int
	service   string
	remoteQPN uint32
	closed    bool
}

// RemoteQPN returns the server-side QPN of the pair.
func (c *Conn) RemoteQPN() uint32 { return c.remoteQPN }

// Errors returned by Dial.
var (
	ErrDialTimeout = errors.New("ctrlplane: dial timed out")
	ErrNotStarted  = errors.New("ctrlplane: manager not started")
)

// RejectError carries the server's reject reason.
type RejectError struct{ Reason string }

func (e *RejectError) Error() string { return "ctrlplane: rejected: " + e.Reason }

// Dial establishes a connection to the named service on the peer host,
// preferring a parked cached pair (one round trip) and falling back to the
// full cold handshake: CreateQP + INIT/RTR/RTS walk on both sides, QPN/PSN
// exchanged in-band over the bootstrap UD QPs. Blocks the calling thread
// for the whole setup, so the cost lands in virtual time.
func (m *Manager) Dial(t *host.Thread, peer int, service string, payload []byte) (*Conn, error) {
	if !m.started {
		return nil, ErrNotStarted
	}
	start := t.P.Now()
	key := cacheKey{peer, service}
	for len(m.cliCache[key]) > 0 {
		stack := m.cliCache[key]
		ent := stack[len(stack)-1]
		m.cliCache[key] = stack[:len(stack)-1]
		if len(m.cliCache[key]) == 0 {
			delete(m.cliCache, key)
		}
		m.cliCached--
		if ent.qp.Err() != nil {
			m.h.NIC.DestroyQP(ent.qp)
			continue
		}
		c, err := m.dialResume(t, peer, service, ent, payload)
		if err != nil {
			// The cached pair was stale (server side gone); fall back cold.
			break
		}
		m.Stats.CacheHits++
		m.Stats.DialsCached++
		m.cachedHist.Observe(uint64(t.P.Now() - start))
		return c, nil
	}
	m.Stats.CacheMisses++
	c, err := m.dialCold(t, peer, service, payload)
	if err != nil {
		m.Stats.DialsFailed++
		return nil, err
	}
	m.Stats.DialsCold++
	m.coldHist.Observe(uint64(t.P.Now() - start))
	return c, nil
}

// awaitReply sends msg and waits for its accept/reject, retrying on
// timeout.
func (m *Manager) awaitReply(t *host.Thread, peer int, msg *wireMsg) (wireMsg, error) {
	w := &dialWait{sig: sim.NewSignal(m.h.Env)}
	m.pending[msg.reqID] = w
	defer delete(m.pending, msg.reqID)
	for attempt := 0; attempt <= m.cfg.DialRetries; attempt++ {
		m.send(t, peer, msg)
		deadline := t.P.Now() + m.cfg.DialTimeout
		for !w.done && t.P.Now() < deadline {
			w.sig.WaitTimeout(t.P, deadline-t.P.Now())
		}
		if w.done {
			return w.resp, nil
		}
	}
	return wireMsg{}, ErrDialTimeout
}

func (m *Manager) dialResume(t *host.Thread, peer int, service string, ent *cliCacheEntry, payload []byte) (*Conn, error) {
	msg := &wireMsg{
		kind: kindResume, reqID: m.allocReq(), qpn: ent.remoteQPN, qpn2: ent.qp.QPN,
		svc: service, payload: payload,
	}
	resp, err := m.awaitReply(t, peer, msg)
	if err != nil {
		m.h.NIC.DestroyQP(ent.qp)
		return nil, err
	}
	if resp.kind == kindReject {
		m.h.NIC.DestroyQP(ent.qp)
		return nil, &RejectError{Reason: resp.reason}
	}
	c := &Conn{
		QP: ent.qp, Payload: resp.payload, Cached: true,
		mgr: m, peer: peer, service: service, remoteQPN: ent.remoteQPN,
	}
	m.cliActive[ent.qp.QPN] = c
	return c, nil
}

func (m *Manager) dialCold(t *host.Thread, peer int, service string, payload []byte) (*Conn, error) {
	ccq := m.h.NIC.CreateCQ()
	qp := t.CreateQP(nic.RC, ccq, ccq)
	if err := t.ModifyQP(qp, nic.QPInit, nic.ModifyAttr{}); err != nil {
		m.h.NIC.DestroyQP(qp)
		return nil, err
	}
	psn := m.allocPSN()
	msg := &wireMsg{kind: kindConnReq, reqID: m.allocReq(), qpn: qp.QPN, psn: psn, svc: service, payload: payload}
	resp, err := m.awaitReply(t, peer, msg)
	if err != nil {
		m.h.NIC.DestroyQP(qp)
		return nil, err
	}
	if resp.kind == kindReject {
		m.h.NIC.DestroyQP(qp)
		return nil, &RejectError{Reason: resp.reason}
	}
	if err := t.ModifyQP(qp, nic.QPRTR, nic.ModifyAttr{
		RemoteNIC: peer, RemoteQPN: resp.qpn, RemotePSN: resp.psn,
	}); err != nil {
		m.h.NIC.DestroyQP(qp)
		return nil, err
	}
	if err := t.ModifyQP(qp, nic.QPRTS, nic.ModifyAttr{LocalPSN: psn}); err != nil {
		m.h.NIC.DestroyQP(qp)
		return nil, err
	}
	m.send(t, peer, &wireMsg{kind: kindReady, qpn: resp.qpn})
	c := &Conn{
		QP: qp, Payload: resp.payload,
		mgr: m, peer: peer, service: service, remoteQPN: resp.qpn,
	}
	m.cliActive[qp.QPN] = c
	return c, nil
}

// walkToRTS runs the server-side INIT/RTR/RTS transitions for an inbound
// connect, charging each ModifyQP verb on the manager thread.
func (m *Manager) walkToRTS(t *host.Thread, qp *nic.QP, peer int, remoteQPN uint32, remotePSN, localPSN uint64) error {
	if err := t.ModifyQP(qp, nic.QPInit, nic.ModifyAttr{}); err != nil {
		return err
	}
	if err := t.ModifyQP(qp, nic.QPRTR, nic.ModifyAttr{
		RemoteNIC: peer, RemoteQPN: remoteQPN, RemotePSN: remotePSN,
	}); err != nil {
		return err
	}
	return t.ModifyQP(qp, nic.QPRTS, nic.ModifyAttr{LocalPSN: localPSN})
}

// Close gracefully leaves the connection: a disconnect notice parks the
// server half, and the client half parks locally, so a later Dial to the
// same (peer, service) resumes the pair without QP setup. The QP stays
// RTS while parked; the manager's sweep ages it out.
func (c *Conn) Close(t *host.Thread) {
	if c.closed {
		return
	}
	c.closed = true
	m := c.mgr
	delete(m.cliActive, c.QP.QPN)
	m.send(t, c.peer, &wireMsg{kind: kindDisconnect, qpn: c.remoteQPN, flag: 1})
	if c.QP.Err() != nil {
		m.h.NIC.DestroyQP(c.QP)
		return
	}
	key := cacheKey{c.peer, c.service}
	m.cliCache[key] = append(m.cliCache[key], &cliCacheEntry{
		qp: c.QP, remoteQPN: c.remoteQPN, parkedAt: t.P.Now(),
	})
	m.cliCached++
	for m.cliCached > m.cfg.CacheCap {
		m.evictOldestCliEntry()
	}
}

// Abort tears the connection down without caching (ungraceful close).
func (c *Conn) Abort(t *host.Thread) {
	if c.closed {
		return
	}
	c.closed = true
	m := c.mgr
	delete(m.cliActive, c.QP.QPN)
	m.send(t, c.peer, &wireMsg{kind: kindDisconnect, qpn: c.remoteQPN})
	m.h.NIC.DestroyQP(c.QP)
}

// evictOldestCliEntry drops the LRU parked outbound connection
// (deterministic: oldest parkedAt, then lowest QPN).
func (m *Manager) evictOldestCliEntry() {
	var vKey cacheKey
	vIdx := -1
	for _, key := range sortedCacheKeys(m.cliCache) {
		for i, ent := range m.cliCache[key] {
			if vIdx < 0 || ent.parkedAt < m.cliCache[vKey][vIdx].parkedAt ||
				(ent.parkedAt == m.cliCache[vKey][vIdx].parkedAt && ent.qp.QPN < m.cliCache[vKey][vIdx].qp.QPN) {
				vKey, vIdx = key, i
			}
		}
	}
	if vIdx < 0 {
		return
	}
	ent := m.cliCache[vKey][vIdx]
	m.cliCache[vKey] = append(m.cliCache[vKey][:vIdx], m.cliCache[vKey][vIdx+1:]...)
	if len(m.cliCache[vKey]) == 0 {
		delete(m.cliCache, vKey)
	}
	m.cliCached--
	m.h.NIC.DestroyQP(ent.qp)
	m.Stats.CapEvictions++
	m.event("cap_evict", vKey.peer, ent.qp.QPN, 0)
}

// ActiveConns returns the number of active inbound connections (tests).
func (m *Manager) ActiveConns() int { return len(m.conns) }

// CachedConns returns the number of parked inbound connections (tests).
func (m *Manager) CachedConns() int { return len(m.srvCache) }
