package ctrlplane

import (
	"encoding/binary"
	"errors"
)

// Control-plane message kinds, carried over each host's bootstrap UD QP.
// The handshake mirrors RDMA-CM: connect-request/accept/ready exchange the
// QPN and initial PSN of each side (the rkeys and any application data ride
// in the opaque payload), resume reactivates a cached pair, and
// keepalive/disconnect maintain the lease and cache state.
const (
	kindConnReq byte = iota + 1
	kindAccept
	kindReject
	kindReady
	kindResume
	kindKeepalive
	kindDisconnect
	// kindPing is a failure-detector probe: the receiver answers with an
	// immediate keepalive, giving the suspecting side a fresh arrival
	// sample without waiting for the next LeaseInterval.
	kindPing
)

// wireMsg is the decoded form of every control-plane message. Field use by
// kind:
//
//	connReq:    reqID, qpn (client QPN), psn (client initial PSN), svc, payload
//	accept:     reqID, qpn (server QPN), psn (server initial PSN), flag (1 =
//	            resumed from cache), payload (service response)
//	reject:     reqID, reason
//	ready:      qpn (server QPN)
//	resume:     reqID, qpn (cached server QPN), qpn2 (client QPN), svc, payload
//	keepalive:  (sender identified by the UD source address)
//	disconnect: qpn (server QPN), flag (1 = graceful: park in cache)
type wireMsg struct {
	kind    byte
	reqID   uint64
	qpn     uint32
	qpn2    uint32
	psn     uint64
	flag    byte
	svc     string
	reason  string
	payload []byte
}

// wireFixed is the fixed prefix: kind, reqID, qpn, qpn2, psn, flag, plus
// the three variable-part length fields (svc u8, reason u8, payload u16).
const wireFixed = 1 + 8 + 4 + 4 + 8 + 1 + 1 + 1 + 2

var errWireShort = errors.New("ctrlplane: truncated control message")

// encode serializes the message into buf, returning the byte count.
func (w *wireMsg) encode(buf []byte) int {
	buf[0] = w.kind
	binary.LittleEndian.PutUint64(buf[1:], w.reqID)
	binary.LittleEndian.PutUint32(buf[9:], w.qpn)
	binary.LittleEndian.PutUint32(buf[13:], w.qpn2)
	binary.LittleEndian.PutUint64(buf[17:], w.psn)
	buf[25] = w.flag
	buf[26] = byte(len(w.svc))
	buf[27] = byte(len(w.reason))
	binary.LittleEndian.PutUint16(buf[28:], uint16(len(w.payload)))
	n := wireFixed
	n += copy(buf[n:], w.svc)
	n += copy(buf[n:], w.reason)
	n += copy(buf[n:], w.payload)
	return n
}

// decodeMsg parses a received control message, copying the variable parts
// out of the receive buffer (which is reposted immediately after).
func decodeMsg(b []byte) (wireMsg, error) {
	if len(b) < wireFixed {
		return wireMsg{}, errWireShort
	}
	w := wireMsg{
		kind:  b[0],
		reqID: binary.LittleEndian.Uint64(b[1:]),
		qpn:   binary.LittleEndian.Uint32(b[9:]),
		qpn2:  binary.LittleEndian.Uint32(b[13:]),
		psn:   binary.LittleEndian.Uint64(b[17:]),
		flag:  b[25],
	}
	svcLen, reasonLen := int(b[26]), int(b[27])
	payLen := int(binary.LittleEndian.Uint16(b[28:]))
	if len(b) < wireFixed+svcLen+reasonLen+payLen {
		return wireMsg{}, errWireShort
	}
	off := wireFixed
	w.svc = string(b[off : off+svcLen])
	off += svcLen
	w.reason = string(b[off : off+reasonLen])
	off += reasonLen
	if payLen > 0 {
		w.payload = append([]byte(nil), b[off:off+payLen]...)
	}
	return w, nil
}
