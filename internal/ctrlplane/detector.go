// Adaptive phi-accrual failure detection (Hayashibara et al.) for the
// control plane's lease machinery. Instead of a fixed TTL — which under
// gray failures (stragglers, lossy links, one-way partitions) either
// evicts healthy-but-slow peers or never fires — each peer's keepalive
// inter-arrival times feed a sliding window, and the suspicion score
//
//	phi(t) = -log10( P(next arrival still pending after t) )
//
// is evaluated against the window's normal fit. phi grows continuously
// with silence, scaled by how regular the peer's arrivals have been, so
// thresholds express "how surprising is this silence" rather than a raw
// duration. The score drives a graceful-degradation ladder with
// hysteresis:
//
//	Healthy → Suspect  (phi ≥ SuspectPhi; the manager starts probing)
//	        → Demoted  (phi ≥ DemotePhi; data planes drain the peer)
//	        → Evicted  (phi ≥ EvictPhi held for EvictHold; conns destroyed)
//	        → Quarantined (rejoin rejected until a jittered backoff lapses)
//	        → Healthy  (readmitted with a fresh window)
//
// Stepping down (Suspect/Demoted → Healthy) requires phi < ClearPhi for
// ClearHold, and eviction requires phi ≥ EvictPhi continuously for
// EvictHold. The eviction dwell is what makes lossy-but-alive links safe:
// at keepalive-loss onset a tightly learned distribution sends phi past
// any threshold within a few hundred microseconds, but once the peer is
// Suspect the manager pings it every sweep, and a peer that is alive at
// all answers enough probes to break the dwell.
package ctrlplane

import (
	"fmt"
	"math"
	"sort"

	"scalerpc/internal/host"
	"scalerpc/internal/sim"
)

// PeerState is a rung of the degradation ladder.
type PeerState int

// Ladder rungs, in escalation order.
const (
	PeerHealthy PeerState = iota
	PeerSuspect
	PeerDemoted
	PeerEvicted
	PeerQuarantined
)

func (s PeerState) String() string {
	switch s {
	case PeerHealthy:
		return "healthy"
	case PeerSuspect:
		return "suspect"
	case PeerDemoted:
		return "demoted"
	case PeerEvicted:
		return "evicted"
	case PeerQuarantined:
		return "quarantined"
	}
	return "?"
}

// DetectorConfig parameterizes the adaptive detector. A nil
// Config.Detector keeps the fixed-TTL behaviour byte-identical.
type DetectorConfig struct {
	// WindowSize is the inter-arrival sample window per peer; MinSamples
	// is how many samples must accrue before the detector judges a peer
	// (below it the fixed LeaseTTL applies as a safety net).
	WindowSize int
	MinSamples int
	// MinStdDev floors the window's standard deviation so a perfectly
	// regular simulated peer doesn't make phi a step function.
	MinStdDev sim.Duration
	// PhiCap bounds the score (erfc underflows to 0 for large silences).
	PhiCap float64

	// Ladder thresholds. ClearPhi must sit below SuspectPhi (hysteresis).
	SuspectPhi float64
	DemotePhi  float64
	EvictPhi   float64
	ClearPhi   float64

	// ClearHold is how long phi must stay below ClearPhi before a
	// Suspect/Demoted peer steps back to Healthy; EvictHold is how long
	// phi must stay at or above EvictPhi before the peer is evicted.
	ClearHold sim.Duration
	EvictHold sim.Duration

	// Quarantine is the base rejoin lockout after an eviction; the actual
	// lockout is Quarantine*(1 + QuarantineJitter*U[0,1)) with a seeded
	// draw, so a herd of evicted peers doesn't redial in lockstep.
	Quarantine       sim.Duration
	QuarantineJitter float64
}

// DefaultDetectorConfig returns thresholds tuned for the default
// control-plane timing (100 µs keepalives, 25 µs sweeps): suspicion within
// ~1 sweep of an anomalous gap, demotion a sweep later, eviction only
// after ~600 µs of probed silence on top of a phi=8 (p < 1e-8) gap.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{
		WindowSize:       32,
		MinSamples:       4,
		MinStdDev:        20_000,
		PhiCap:           16,
		SuspectPhi:       1,
		DemotePhi:        2,
		EvictPhi:         8,
		ClearPhi:         0.5,
		ClearHold:        200_000,
		EvictHold:        600_000,
		Quarantine:       2_000_000,
		QuarantineJitter: 0.5,
	}
}

// peerDetector is the per-peer detector state.
type peerDetector struct {
	win  []float64 // inter-arrival ring, ns
	idx  int
	n    int
	last sim.Time
	seen bool

	state PeerState
	phi   float64 // latest score, exported as a gauge

	clearAt   sim.Time // start of the current phi<ClearPhi stretch (0 = none)
	evictAt   sim.Time // start of the current phi>=EvictPhi stretch (0 = none)
	quarUntil sim.Time
}

func newPeerDetector(window int) *peerDetector {
	return &peerDetector{win: make([]float64, window)}
}

// arrival records a liveness sample (keepalive, probe reply, handshake).
func (pd *peerDetector) arrival(now sim.Time) {
	if pd.seen && now > pd.last {
		pd.win[pd.idx] = float64(now - pd.last)
		pd.idx = (pd.idx + 1) % len(pd.win)
		if pd.n < len(pd.win) {
			pd.n++
		}
	}
	pd.last = now
	pd.seen = true
}

// reset clears the window and returns the peer to Healthy — a readmission
// after quarantine starts with no prejudice.
func (pd *peerDetector) reset() {
	pd.idx, pd.n = 0, 0
	pd.seen = false
	pd.state = PeerHealthy
	pd.phi = 0
	pd.clearAt, pd.evictAt, pd.quarUntil = 0, 0, 0
}

// phiAt evaluates the suspicion score for the silence now-last against the
// window's normal fit.
func (pd *peerDetector) phiAt(now sim.Time, cfg *DetectorConfig) float64 {
	if !pd.seen || pd.n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < pd.n; i++ {
		sum += pd.win[i]
	}
	mean := sum / float64(pd.n)
	var vsum float64
	for i := 0; i < pd.n; i++ {
		d := pd.win[i] - mean
		vsum += d * d
	}
	sd := math.Sqrt(vsum / float64(pd.n))
	if floor := float64(cfg.MinStdDev); sd < floor {
		sd = floor
	}
	elapsed := float64(now - pd.last)
	// P(silence >= elapsed) under N(mean, sd).
	p := 0.5 * math.Erfc((elapsed-mean)/(sd*math.Sqrt2))
	if p <= 0 || math.IsNaN(p) {
		return cfg.PhiCap
	}
	phi := -math.Log10(p)
	if phi < 0 {
		phi = 0
	}
	if phi > cfg.PhiCap {
		phi = cfg.PhiCap
	}
	return phi
}

// OnPeerState registers a hook fired on every ladder transition — how the
// ScaleRPC server and the shard director learn to drain or restore a peer.
// Hooks run on the manager thread; they must not block.
func (m *Manager) OnPeerState(fn func(peer int, old, new PeerState)) {
	m.onPeerState = append(m.onPeerState, fn)
}

// SetGroundTruth installs the harness's oracle for whether a peer is
// genuinely down. Evicting a peer the oracle calls alive increments
// detector.false_evictions — in both fixed-TTL and adaptive modes, so the
// two are comparable. Nil (the default) disables the accounting.
func (m *Manager) SetGroundTruth(fn func(peer int) bool) { m.groundTruth = fn }

// PeerStateOf reports the detector's ladder rung for a peer (PeerHealthy
// when the detector is off or the peer is unknown).
func (m *Manager) PeerStateOf(peer int) PeerState {
	if pd := m.det[peer]; pd != nil {
		return pd.state
	}
	return PeerHealthy
}

// DetectorEnabled reports whether this manager runs the adaptive detector
// (Config.Detector was set). Subsystems with their own fixed-TTL liveness
// checks (the shard director) defer to the ladder when it is on.
func (m *Manager) DetectorEnabled() bool { return m.det != nil }

// PeerPhi reports the peer's latest suspicion score (0 when unknown).
func (m *Manager) PeerPhi(peer int) float64 {
	if pd := m.det[peer]; pd != nil {
		return pd.phi
	}
	return 0
}

// detArrival feeds a liveness sample into the peer's detector. No-op in
// fixed-TTL mode.
func (m *Manager) detArrival(peer int, now sim.Time) {
	if m.det == nil {
		return
	}
	pd := m.det[peer]
	if pd == nil {
		pd = newPeerDetector(m.cfg.Detector.WindowSize)
		m.det[peer] = pd
		m.detScope.GaugeVar(fmt.Sprintf("phi.peer%d", peer), &pd.phi)
	}
	pd.arrival(now)
}

// setPeerState performs one ladder transition: counters, event log, hooks.
func (m *Manager) setPeerState(peer int, pd *peerDetector, to PeerState) {
	from := pd.state
	if from == to {
		return
	}
	pd.state = to
	switch to {
	case PeerSuspect:
		m.Stats.DetectorSuspicions++
		m.event("suspect", peer, 0, 0)
	case PeerDemoted:
		if from == PeerHealthy {
			// A gap violent enough to jump straight past SuspectPhi still
			// counts as a suspicion.
			m.Stats.DetectorSuspicions++
		}
		m.Stats.DetectorDemotions++
		m.event("demote", peer, 0, 0)
	case PeerEvicted:
		m.Stats.DetectorEvictions++
		if m.groundTruth != nil && !m.groundTruth(peer) {
			m.Stats.FalseEvictions++
		}
		m.event("det_evict", peer, 0, 0)
	case PeerQuarantined:
		m.event("quarantine", peer, 0, 0)
	case PeerHealthy:
		if from == PeerQuarantined {
			m.Stats.DetectorReadmits++
			m.event("readmit", peer, 0, 0)
		} else {
			m.event("restore", peer, 0, 0)
		}
	}
	for _, fn := range m.onPeerState {
		fn(peer, from, to)
	}
}

// detectorSweep advances every connected peer's ladder once per manager
// sweep: score the current silence, escalate immediately, de-escalate only
// after the ClearHold dwell, and probe Suspect/Demoted peers so an
// alive-but-lossy peer keeps feeding the window. Runs before the expiry
// loop, which destroys the connections of peers marked PeerEvicted here.
func (m *Manager) detectorSweep(t *host.Thread, now sim.Time) {
	if m.det == nil {
		return
	}
	cfg := m.cfg.Detector
	peerSet := map[int]bool{}
	for _, sc := range m.conns {
		peerSet[sc.peer] = true
	}
	// Peers whose ladder is already climbing stay under watch even after
	// their last connection errors out: an asymmetric partition kills the
	// RC pair long before the eviction dwell completes, and dropping the
	// peer from the sweep here would freeze it at Demoted forever —
	// never evicted (so no quarantine/readmit cycle) and never restored.
	// A transport-level failure is further evidence against the peer, not
	// a reason to stop scoring it; the probes below travel over UD and
	// need no RC pair.
	for peer, pd := range m.det {
		if pd.state == PeerSuspect || pd.state == PeerDemoted {
			peerSet[peer] = true
		}
	}
	for _, peer := range sortedPeers(peerSet) {
		pd := m.det[peer]
		if pd == nil || pd.n < cfg.MinSamples {
			continue // LeaseTTL safety net applies until history accrues
		}
		if pd.state == PeerEvicted || pd.state == PeerQuarantined {
			continue
		}
		phi := pd.phiAt(now, cfg)
		pd.phi = phi

		// Eviction needs the score held at EvictPhi for the whole
		// EvictHold dwell — the guard that keeps lossy-but-alive peers
		// connected: once Suspect, probes below refresh the window, and
		// any single arrival breaks the stretch.
		if phi >= cfg.EvictPhi {
			if pd.evictAt == 0 {
				pd.evictAt = now
			}
			if now-pd.evictAt >= cfg.EvictHold {
				m.setPeerState(peer, pd, PeerEvicted)
				continue
			}
		} else {
			pd.evictAt = 0
		}

		if phi >= cfg.DemotePhi {
			if pd.state != PeerDemoted {
				m.setPeerState(peer, pd, PeerDemoted)
			}
		} else if phi >= cfg.SuspectPhi && pd.state == PeerHealthy {
			m.setPeerState(peer, pd, PeerSuspect)
		}

		if phi < cfg.ClearPhi {
			if pd.clearAt == 0 {
				pd.clearAt = now
			}
			if now-pd.clearAt >= cfg.ClearHold && pd.state != PeerHealthy {
				m.setPeerState(peer, pd, PeerHealthy)
			}
		} else {
			pd.clearAt = 0
		}

		if pd.state == PeerSuspect || pd.state == PeerDemoted {
			m.Stats.DetectorProbes++
			m.send(t, peer, &wireMsg{kind: kindPing})
		}
	}
}

// peerExpired is the sweep's expiry predicate: the adaptive ladder when
// the detector has enough history on the peer, the fixed LeaseTTL
// otherwise.
func (m *Manager) peerExpired(peer int, now sim.Time) bool {
	if m.det != nil {
		if pd := m.det[peer]; pd != nil && pd.n >= m.cfg.Detector.MinSamples {
			return pd.state == PeerEvicted
		}
	}
	return now-m.leases[peer] > m.cfg.LeaseTTL
}

// quarantineEvicted moves freshly evicted peers into quarantine with a
// seeded-jitter lockout, so a herd of evictees doesn't redial in lockstep.
func (m *Manager) quarantineEvicted(now sim.Time) {
	if m.det == nil {
		return
	}
	cfg := m.cfg.Detector
	for _, peer := range sortedDetPeers(m.det) {
		pd := m.det[peer]
		if pd.state != PeerEvicted {
			continue
		}
		dur := float64(cfg.Quarantine) * (1 + cfg.QuarantineJitter*m.detRNG.Float64())
		pd.quarUntil = now + sim.Duration(dur)
		m.setPeerState(peer, pd, PeerQuarantined)
	}
}

// quarantineReject gates a connect/resume from a quarantined peer. An
// attempt after the lockout readmits the peer with a fresh window.
func (m *Manager) quarantineReject(t *host.Thread, peer int, msg *wireMsg) bool {
	if m.det == nil {
		return false
	}
	pd := m.det[peer]
	if pd == nil || pd.state != PeerQuarantined {
		return false
	}
	if m.h.Env.Now() >= pd.quarUntil {
		m.setPeerState(peer, pd, PeerHealthy) // Quarantined→Healthy = readmit
		pd.reset()
		return false
	}
	m.reject(t, peer, msg, "quarantined")
	return true
}

func sortedDetPeers(mp map[int]*peerDetector) []int {
	out := make([]int, 0, len(mp))
	for p := range mp {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
