package ctrlplane_test

import (
	"errors"
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/ctrlplane"
	"scalerpc/internal/faults"
	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/sim"
)

// step drives the simulation in small increments until cond holds or limit
// virtual time elapses (cluster procs run forever, so Env.Run never idles).
func step(t *testing.T, c *cluster.Cluster, limit sim.Duration, cond func() bool) {
	t.Helper()
	deadline := c.Env.Now() + limit
	for !cond() {
		if c.Env.Now() >= deadline {
			t.Fatalf("condition not reached within %d ns", limit)
		}
		c.Env.RunUntil(c.Env.Now() + 10_000)
	}
}

// testPlane builds a cluster with managers using cfg and an echo service on
// host 0.
func testPlane(t *testing.T, hosts int, cfg ctrlplane.Config) (*cluster.Cluster, *ctrlplane.Directory, *ctrlplane.EchoService) {
	t.Helper()
	c := cluster.New(cluster.Default(hosts))
	t.Cleanup(c.Close)
	dir := ctrlplane.NewDirectory()
	for _, h := range c.Hosts {
		ctrlplane.NewManager(h, cfg, dir).Start()
	}
	svc := ctrlplane.NewEchoService()
	dir.Manager(0).RegisterService("echo", svc)
	return c, dir, svc
}

func TestDialColdThenCachedResume(t *testing.T) {
	c, dir, svc := testPlane(t, 2, ctrlplane.DefaultConfig())
	m := dir.Manager(1)

	var conn *ctrlplane.Conn
	var coldNs, cachedNs sim.Duration
	var dialErr error
	done := 0
	c.Hosts[1].Spawn("dialer", func(th *host.Thread) {
		start := th.P.Now()
		conn, dialErr = m.Dial(th, 0, "echo", []byte("hello"))
		coldNs = th.P.Now() - start
		done = 1
		if dialErr != nil {
			return
		}
		conn.Close(th)
		th.P.Sleep(20_000)
		start = th.P.Now()
		conn, dialErr = m.Dial(th, 0, "echo", []byte("again"))
		cachedNs = th.P.Now() - start
		done = 2
	})
	step(t, c, 5_000_000, func() bool { return done == 2 })
	if dialErr != nil {
		t.Fatal(dialErr)
	}
	if string(conn.Payload) != "again" {
		t.Fatalf("payload = %q, want echo of dial payload", conn.Payload)
	}
	if !conn.Cached {
		t.Fatal("second dial should resume from cache")
	}
	if svc.Live == nil || len(svc.Live) != 1 {
		t.Fatalf("service live handles = %d, want 1", len(svc.Live))
	}
	// Cold setup pays CreateQP + INIT/RTR/RTS on both sides; the cached
	// resume is a single control round trip. The ≥10x separation is the
	// connsetup acceptance bar.
	if coldNs < 40_000 {
		t.Fatalf("cold dial took %d ns; QP setup latencies not charged", coldNs)
	}
	if cachedNs*10 > coldNs {
		t.Fatalf("cached dial %d ns vs cold %d ns: want >=10x cheaper", cachedNs, coldNs)
	}
	st := m.Stats
	if st.DialsCold != 1 || st.DialsCached != 1 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 1 cold, 1 cached, 1 hit", st)
	}
}

// TestDialedPairCarriesData proves the in-band handshake exchanges working
// QPN/PSN state: an RDMA write posted on the dialed QP lands in the
// server-side region.
func TestDialedPairCarriesData(t *testing.T) {
	c, dir, _ := testPlane(t, 2, ctrlplane.DefaultConfig())

	dst := c.Hosts[0].Mem.Register(4096, memory.PageSize4K,
		memory.LocalWrite|memory.RemoteWrite)
	src := c.Hosts[1].Mem.Register(4096, memory.PageSize4K, memory.LocalWrite)
	copy(src.Bytes(), "in-band!")

	done := false
	c.Hosts[1].Spawn("writer", func(th *host.Thread) {
		conn, err := dir.Manager(1).Dial(th, 0, "echo", nil)
		if err != nil {
			t.Error(err)
			done = true
			return
		}
		if conn.QP.State() != nic.QPRTS {
			t.Errorf("dialed QP state = %v, want RTS", conn.QP.State())
		}
		th.PostSend(conn.QP, nic.SendWR{
			WRID: 1, Op: nic.OpWrite, Signaled: true,
			LKey: src.LKey, LAddr: src.Base, Len: 8,
			RKey: dst.RKey, RAddr: dst.Base,
		})
		done = true
	})
	step(t, c, 5_000_000, func() bool { return done && string(dst.Bytes()[:8]) == "in-band!" })
}

func TestDialUnknownServiceRejected(t *testing.T) {
	c, dir, _ := testPlane(t, 2, ctrlplane.DefaultConfig())
	var err error
	done := false
	c.Hosts[1].Spawn("dialer", func(th *host.Thread) {
		_, err = dir.Manager(1).Dial(th, 0, "nope", nil)
		done = true
	})
	step(t, c, 5_000_000, func() bool { return done })
	var rej *ctrlplane.RejectError
	if err == nil {
		t.Fatal("dial to unknown service succeeded")
	}
	if ok := errorsAs(err, &rej); !ok {
		t.Fatalf("err = %v, want RejectError", err)
	}
}

func errorsAs(err error, target **ctrlplane.RejectError) bool {
	if e, ok := err.(*ctrlplane.RejectError); ok {
		*target = e
		return true
	}
	return false
}

// TestLeaseExpiryOnCrash crashes the client host; its keepalives stop (the
// fault plane drops everything to/from a down node) and the server evicts
// the connection when the lease lapses.
func TestLeaseExpiryOnCrash(t *testing.T) {
	cfg := ctrlplane.DefaultConfig()
	c := cluster.New(cluster.Default(2))
	t.Cleanup(c.Close)
	plane := c.InstallFaults(&faults.Scenario{Name: "crash-client"})
	dir := ctrlplane.NewDirectory()
	for _, h := range c.Hosts {
		ctrlplane.NewManager(h, cfg, dir).Start()
	}
	svc := ctrlplane.NewEchoService()
	srv := dir.Manager(0)
	srv.RegisterService("echo", svc)

	dialed := false
	c.Hosts[1].Spawn("dialer", func(th *host.Thread) {
		if _, err := dir.Manager(1).Dial(th, 0, "echo", nil); err != nil {
			t.Error(err)
		}
		dialed = true
	})
	step(t, c, 5_000_000, func() bool { return dialed && srv.ActiveConns() == 1 })

	plane.CrashNode(1)
	step(t, c, 10*cfg.LeaseTTL, func() bool { return srv.ActiveConns() == 0 })
	if srv.Stats.LeaseExpiries != 1 {
		t.Fatalf("lease expiries = %d, want 1", srv.Stats.LeaseExpiries)
	}
	if len(svc.Dropped) != 1 {
		t.Fatalf("dropped handles = %d, want 1", len(svc.Dropped))
	}
	for _, reason := range svc.Dropped {
		if reason != ctrlplane.CloseExpired {
			t.Fatalf("close reason = %v, want expired", reason)
		}
	}
	found := false
	for _, e := range srv.Events {
		if e.Kind == "expire" {
			found = true
		}
	}
	if !found {
		t.Fatal("no expire event logged")
	}
}

// TestIdleTeardownAndCapEviction exercises both cache-bounding mechanisms.
func TestIdleTeardownAndCapEviction(t *testing.T) {
	cfg := ctrlplane.DefaultConfig()
	cfg.CacheCap = 2
	cfg.IdleTimeout = 300_000
	c, dir, svc := testPlane(t, 2, cfg)
	srv := dir.Manager(0)

	done := false
	c.Hosts[1].Spawn("dialer", func(th *host.Thread) {
		// Hold 4 connections open, then gracefully close them all: the cap
		// (2) forces two evictions from the server cache.
		var conns []*ctrlplane.Conn
		for i := 0; i < 4; i++ {
			conn, err := dir.Manager(1).Dial(th, 0, "echo", nil)
			if err != nil {
				t.Error(err)
				break
			}
			conns = append(conns, conn)
		}
		for _, conn := range conns {
			conn.Close(th)
			th.P.Sleep(1_000)
		}
		done = true
	})
	step(t, c, 10_000_000, func() bool { return done })
	step(t, c, 1_000_000, func() bool { return srv.CachedConns() <= cfg.CacheCap })
	if srv.Stats.CapEvictions < 2 {
		t.Fatalf("cap evictions = %d, want >= 2", srv.Stats.CapEvictions)
	}
	// The survivors age out via the idle timeout.
	step(t, c, 20*cfg.IdleTimeout, func() bool { return srv.CachedConns() == 0 })
	if srv.Stats.IdleTeardowns == 0 {
		t.Fatal("no idle teardowns recorded")
	}
	if len(svc.Parked) != 0 {
		t.Fatalf("service still has %d parked handles after teardown", len(svc.Parked))
	}
}

// gatedEcho wraps EchoService with a Gatekeeper whose policy the test
// controls.
type gatedEcho struct {
	*ctrlplane.EchoService
	admit func() error
}

func (g *gatedEcho) PreAdmit(peer int, svc string, payload []byte) error { return g.admit() }

// TestAdmitQueueReleasesWhenQuotaFrees parks an over-quota dial in the
// admission queue and checks it is admitted once the first connection
// leaves — no client-side retry logic involved, the server re-examines the
// queue on its sweep.
func TestAdmitQueueReleasesWhenQuotaFrees(t *testing.T) {
	cfg := ctrlplane.DefaultConfig()
	c := cluster.New(cluster.Default(3))
	t.Cleanup(c.Close)
	dir := ctrlplane.NewDirectory()
	for _, h := range c.Hosts {
		ctrlplane.NewManager(h, cfg, dir).Start()
	}
	svc := &gatedEcho{EchoService: ctrlplane.NewEchoService()}
	svc.admit = func() error {
		if len(svc.Live) >= 1 {
			return ctrlplane.ErrAdmitQueue
		}
		return nil
	}
	dir.Manager(0).RegisterService("echo", svc)

	var connA, connB *ctrlplane.Conn
	var errA, errB error
	stage := 0
	c.Hosts[1].Spawn("dialerA", func(th *host.Thread) {
		connA, errA = dir.Manager(1).Dial(th, 0, "echo", nil)
		stage = 1
		// Hold the only slot until well after B has queued, then leave.
		th.P.Sleep(150_000)
		connA.Close(th)
	})
	c.Hosts[2].Spawn("dialerB", func(th *host.Thread) {
		for stage == 0 {
			th.P.Sleep(5_000)
		}
		connB, errB = dir.Manager(2).Dial(th, 0, "echo", nil)
		stage = 2
	})
	step(t, c, 5_000_000, func() bool { return stage == 2 })
	if errA != nil || errB != nil {
		t.Fatalf("dials failed: A=%v B=%v", errA, errB)
	}
	if connB == nil || connB.Cached {
		t.Fatal("B should hold a cold connection admitted from the queue")
	}
	st := dir.Manager(0).Stats
	if st.AdmitQueued != 1 || st.AdmitReleased != 1 || st.AdmitTimeouts != 0 {
		t.Fatalf("admission stats = queued %d released %d timeouts %d, want 1/1/0",
			st.AdmitQueued, st.AdmitReleased, st.AdmitTimeouts)
	}
}

// TestAdmitQueueTimeoutRejects keeps the gate closed: the parked dial must
// be rejected with a reason once AdmitQueueTimeout lapses, and a
// hard-error gate must reject immediately without queueing.
func TestAdmitQueueTimeoutRejects(t *testing.T) {
	cfg := ctrlplane.DefaultConfig()
	cfg.AdmitQueueTimeout = 50_000
	c := cluster.New(cluster.Default(2))
	t.Cleanup(c.Close)
	dir := ctrlplane.NewDirectory()
	for _, h := range c.Hosts {
		ctrlplane.NewManager(h, cfg, dir).Start()
	}
	svc := &gatedEcho{EchoService: ctrlplane.NewEchoService()}
	svc.admit = func() error { return ctrlplane.ErrAdmitQueue }
	dir.Manager(0).RegisterService("echo", svc)

	var err error
	done := false
	c.Hosts[1].Spawn("dialer", func(th *host.Thread) {
		_, err = dir.Manager(1).Dial(th, 0, "echo", nil)
		done = true
	})
	step(t, c, 5_000_000, func() bool { return done })
	var rej *ctrlplane.RejectError
	if !errorsAs(err, &rej) {
		t.Fatalf("err = %v, want RejectError after queue timeout", err)
	}
	if dir.Manager(0).Stats.AdmitTimeouts != 1 {
		t.Fatalf("AdmitTimeouts = %d, want 1", dir.Manager(0).Stats.AdmitTimeouts)
	}

	// A hard gate error skips the queue entirely.
	svc.admit = func() error { return errors.New("tenant quota exceeded") }
	done = false
	c.Hosts[1].Spawn("dialer2", func(th *host.Thread) {
		_, err = dir.Manager(1).Dial(th, 0, "echo", nil)
		done = true
	})
	step(t, c, 5_000_000, func() bool { return done })
	if !errorsAs(err, &rej) || rej.Reason != "tenant quota exceeded" {
		t.Fatalf("err = %v, want immediate reject with gate reason", err)
	}
}
