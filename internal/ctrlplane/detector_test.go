package ctrlplane_test

import (
	"reflect"
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/ctrlplane"
	"scalerpc/internal/faults"
	"scalerpc/internal/host"
	"scalerpc/internal/sim"
)

// detConfig returns the default control-plane config with the adaptive
// detector switched on.
func detConfig() ctrlplane.Config {
	cfg := ctrlplane.DefaultConfig()
	det := ctrlplane.DefaultDetectorConfig()
	cfg.Detector = &det
	return cfg
}

// lossyPlane builds a 2-host plane (echo server on 0, client on 1) with a
// keepalive-only loss window on the client→server link, dials once, and
// runs past the window. It returns the server manager for assertions.
// alive is the ground-truth oracle installed at the server.
func lossyPlane(t *testing.T, seed uint64, cfg ctrlplane.Config, dropRate float64) *ctrlplane.Manager {
	t.Helper()
	const (
		lossFrom = 1_000_000
		lossTo   = 11_000_000
	)
	cc := cluster.Default(2)
	cc.Seed = seed
	c := cluster.New(cc)
	t.Cleanup(c.Close)
	c.InstallFaults(&faults.Scenario{
		Name: "keepalive-loss",
		Links: []faults.LinkFault{{
			Src: 1, Dst: 0, From: lossFrom, Until: lossTo,
			DropRate: dropRate, Class: faults.ClassKeepalive,
		}},
	})
	dir := ctrlplane.NewDirectory()
	for _, h := range c.Hosts {
		ctrlplane.NewManager(h, cfg, dir).Start()
	}
	srv := dir.Manager(0)
	srv.RegisterService("echo", ctrlplane.NewEchoService())
	srv.SetGroundTruth(func(int) bool { return false }) // everyone is alive

	dialed := false
	c.Hosts[1].Spawn("dialer", func(th *host.Thread) {
		if _, err := dir.Manager(1).Dial(th, 0, "echo", nil); err != nil {
			t.Error(err)
		}
		dialed = true
	})
	step(t, c, 5_000_000, func() bool { return dialed && srv.ActiveConns() == 1 })
	c.Env.RunUntil(lossTo + 1_000_000)
	return srv
}

// TestDetectorSurvivesKeepaliveLoss is the headline gray-failure contract:
// a peer whose keepalives are 80% lost but which is perfectly alive must
// stay connected under the adaptive detector (suspected and probed, never
// evicted), while the fixed-TTL lease demonstrably false-evicts it under
// the identical schedule.
func TestDetectorSurvivesKeepaliveLoss(t *testing.T) {
	srv := lossyPlane(t, 1, detConfig(), 0.8)
	st := srv.Stats
	if srv.ActiveConns() != 1 {
		t.Fatalf("active conns = %d, want the lossy-but-alive peer kept", srv.ActiveConns())
	}
	if st.DetectorEvictions != 0 || st.FalseEvictions != 0 || st.LeaseExpiries != 0 {
		t.Fatalf("lossy-but-alive peer evicted: %+v", st)
	}
	if st.DetectorSuspicions == 0 {
		t.Fatal("80% keepalive loss never raised suspicion")
	}
	if st.DetectorProbes == 0 {
		t.Fatal("suspect peer was never probed")
	}
	if srv.PeerStateOf(1) == ctrlplane.PeerEvicted || srv.PeerStateOf(1) == ctrlplane.PeerQuarantined {
		t.Fatalf("peer state = %v after the loss window", srv.PeerStateOf(1))
	}

	// The fixed-TTL twin: same seed, same schedule, no detector. A 400 µs
	// TTL over 100 µs keepalives at 80% loss is certain to lapse.
	srv = lossyPlane(t, 1, ctrlplane.DefaultConfig(), 0.8)
	st = srv.Stats
	if st.LeaseExpiries == 0 {
		t.Fatal("fixed TTL never expired under 80% keepalive loss — the baseline this PR fixes should misfire here")
	}
	if st.FalseEvictions == 0 {
		t.Fatal("fixed-TTL expiry of an alive peer was not counted as a false eviction")
	}
}

// TestDetectorLadderOnCrash walks the full ladder on a genuine death:
// suspect → demote → evict → quarantine, in order, with no false-eviction
// charge (the ground truth agrees the peer is gone).
func TestDetectorLadderOnCrash(t *testing.T) {
	cfg := detConfig()
	c := cluster.New(cluster.Default(2))
	t.Cleanup(c.Close)
	plane := c.InstallFaults(&faults.Scenario{Name: "crash-client"})
	dir := ctrlplane.NewDirectory()
	for _, h := range c.Hosts {
		ctrlplane.NewManager(h, cfg, dir).Start()
	}
	svc := ctrlplane.NewEchoService()
	srv := dir.Manager(0)
	srv.RegisterService("echo", svc)
	crashed := false
	srv.SetGroundTruth(func(int) bool { return crashed })

	dialed := false
	c.Hosts[1].Spawn("dialer", func(th *host.Thread) {
		if _, err := dir.Manager(1).Dial(th, 0, "echo", nil); err != nil {
			t.Error(err)
		}
		dialed = true
	})
	step(t, c, 5_000_000, func() bool { return dialed && srv.ActiveConns() == 1 })

	// Warm the window past MinSamples so the ladder (not the TTL net) rules.
	c.Env.RunUntil(c.Env.Now() + 1_000_000)
	crashAt := c.Env.Now()
	crashed = true
	plane.CrashNode(1)
	step(t, c, 5_000_000, func() bool { return srv.ActiveConns() == 0 })

	st := srv.Stats
	if st.DetectorSuspicions == 0 || st.DetectorDemotions == 0 || st.DetectorEvictions != 1 {
		t.Fatalf("ladder counters = %+v, want suspicion, demotion and exactly one eviction", st)
	}
	if st.FalseEvictions != 0 {
		t.Fatalf("%d false evictions charged for a genuinely dead peer", st.FalseEvictions)
	}
	if st.LeaseExpiries != 1 {
		t.Fatalf("lease expiries = %d, want the evicted peer's one connection", st.LeaseExpiries)
	}
	for _, reason := range svc.Dropped {
		if reason != ctrlplane.CloseExpired {
			t.Fatalf("close reason = %v, want expired", reason)
		}
	}

	// The ladder must have walked in escalation order, and the whole
	// detection must land well inside the run (phi ramp + evict dwell).
	rung := map[string]int{}
	var evictAt sim.Time
	for i, e := range srv.Events {
		switch e.Kind {
		case "suspect", "demote", "det_evict", "quarantine":
			if _, dup := rung[e.Kind]; !dup {
				rung[e.Kind] = i
			}
			if e.Kind == "det_evict" {
				evictAt = e.At
			}
		}
	}
	for _, k := range []string{"suspect", "demote", "det_evict", "quarantine"} {
		if _, ok := rung[k]; !ok {
			t.Fatalf("no %q event logged; events: %v", k, srv.Events)
		}
	}
	if !(rung["suspect"] < rung["demote"] && rung["demote"] < rung["det_evict"] && rung["det_evict"] < rung["quarantine"]) {
		t.Fatalf("ladder events out of order: %v", rung)
	}
	if lat := evictAt - crashAt; lat > 2_000_000 {
		t.Fatalf("detection latency %d ns, want the crash called within 2 ms", lat)
	}
	if got := srv.PeerStateOf(1); got != ctrlplane.PeerQuarantined {
		t.Fatalf("peer state = %v, want quarantined after eviction", got)
	}
}

// TestDetectorQuarantineGateAndReadmit evicts a peer via a total one-way
// silence (everything client→server lost — the asymmetric partition where
// even an adaptive detector must eventually give up), then checks the
// rejoin discipline: a dial inside the quarantine lockout is rejected, a
// dial after it readmits the peer with a clean window. The eviction of the
// still-alive peer must also be charged as a false eviction.
func TestDetectorQuarantineGateAndReadmit(t *testing.T) {
	cfg := detConfig()
	c := cluster.New(cluster.Default(2))
	t.Cleanup(c.Close)
	c.InstallFaults(&faults.Scenario{
		Name: "one-way-silence",
		Links: []faults.LinkFault{
			faults.OneWayPartition(1, 0, 1_000_000, 2_600_000),
		},
	})
	dir := ctrlplane.NewDirectory()
	for _, h := range c.Hosts {
		ctrlplane.NewManager(h, cfg, dir).Start()
	}
	srv := dir.Manager(0)
	srv.RegisterService("echo", ctrlplane.NewEchoService())
	srv.SetGroundTruth(func(int) bool { return false }) // alive throughout

	var lockoutErr, rejoinErr error
	var rejoin *ctrlplane.Conn
	stage := 0
	c.Hosts[1].Spawn("dialer", func(th *host.Thread) {
		if _, err := dir.Manager(1).Dial(th, 0, "echo", nil); err != nil {
			t.Error(err)
		}
		stage = 1
		// The partition evicts us by ~1.9 ms and quarantine holds for
		// 2–3 ms beyond that; 3 ms is inside the lockout for any draw.
		th.P.Sleep(3_000_000 - th.P.Now())
		_, lockoutErr = dir.Manager(1).Dial(th, 0, "echo", nil)
		stage = 2
		th.P.Sleep(6_000_000 - th.P.Now())
		rejoin, rejoinErr = dir.Manager(1).Dial(th, 0, "echo", nil)
		stage = 3
	})
	step(t, c, 10_000_000, func() bool { return stage == 3 })

	if srv.Stats.DetectorEvictions != 1 || srv.Stats.FalseEvictions != 1 {
		t.Fatalf("evictions = %d false = %d, want 1/1 (alive peer, total one-way silence)",
			srv.Stats.DetectorEvictions, srv.Stats.FalseEvictions)
	}
	var rej *ctrlplane.RejectError
	if !errorsAs(lockoutErr, &rej) || rej.Reason != "quarantined" {
		t.Fatalf("dial inside lockout: err = %v, want quarantine reject", lockoutErr)
	}
	if rejoinErr != nil || rejoin == nil {
		t.Fatalf("dial after lockout failed: %v", rejoinErr)
	}
	if srv.Stats.DetectorReadmits != 1 {
		t.Fatalf("readmits = %d, want 1", srv.Stats.DetectorReadmits)
	}
	kinds := map[string]int{}
	for _, e := range srv.Events {
		kinds[e.Kind]++
	}
	if kinds["quarantine"] != 1 || kinds["readmit"] != 1 {
		t.Fatalf("event mix = %v, want one quarantine and one readmit", kinds)
	}
	if got := srv.PeerStateOf(1); got != ctrlplane.PeerHealthy {
		t.Fatalf("peer state = %v after readmission, want healthy", got)
	}
}

// TestDetectorTTLFallbackBeforeMinSamples crashes the client before the
// detector has MinSamples of history: the fixed LeaseTTL safety net must
// still evict, through the expire path, with the ladder untouched.
func TestDetectorTTLFallbackBeforeMinSamples(t *testing.T) {
	cfg := detConfig()
	c := cluster.New(cluster.Default(2))
	t.Cleanup(c.Close)
	plane := c.InstallFaults(&faults.Scenario{Name: "early-crash"})
	dir := ctrlplane.NewDirectory()
	for _, h := range c.Hosts {
		ctrlplane.NewManager(h, cfg, dir).Start()
	}
	srv := dir.Manager(0)
	srv.RegisterService("echo", ctrlplane.NewEchoService())

	dialed := false
	c.Hosts[1].Spawn("dialer", func(th *host.Thread) {
		if _, err := dir.Manager(1).Dial(th, 0, "echo", nil); err != nil {
			t.Error(err)
		}
		dialed = true
	})
	step(t, c, 5_000_000, func() bool { return dialed && srv.ActiveConns() == 1 })

	// ~2 keepalive arrivals by 250 µs — below MinSamples (4).
	c.Env.RunUntil(250_000)
	plane.CrashNode(1)
	step(t, c, 10*cfg.LeaseTTL, func() bool { return srv.ActiveConns() == 0 })

	st := srv.Stats
	if st.LeaseExpiries != 1 {
		t.Fatalf("lease expiries = %d, want the TTL net to fire", st.LeaseExpiries)
	}
	if st.DetectorEvictions != 0 || st.DetectorDemotions != 0 {
		t.Fatalf("ladder moved below MinSamples: %+v", st)
	}
	for _, e := range srv.Events {
		if e.Kind == "det_evict" || e.Kind == "quarantine" {
			t.Fatalf("detector event %q logged below MinSamples", e.Kind)
		}
	}
}

// TestDetectorDeterminism replays the lossy-keepalive run: identical seeds
// must reproduce the event log, every detector counter, and the exported
// per-peer phi gauge exactly.
func TestDetectorDeterminism(t *testing.T) {
	type snap struct {
		stats  ctrlplane.Stats
		events []ctrlplane.Event
		tel    map[string]float64
	}
	run := func(seed uint64) snap {
		srv := lossyPlane(t, seed, detConfig(), 0.8)
		reg := srv.Host().Tel.Registry()
		tel := map[string]float64{}
		for _, name := range []string{
			"ctrlplane0.detector.suspicions",
			"ctrlplane0.detector.demotions",
			"ctrlplane0.detector.evictions",
			"ctrlplane0.detector.false_evictions",
			"ctrlplane0.detector.readmits",
			"ctrlplane0.detector.probes",
			"ctrlplane0.detector.pings_rx",
			"ctrlplane0.detector.phi.peer1",
		} {
			v, ok := reg.Value(name)
			if !ok {
				t.Fatalf("telemetry %q not registered", name)
			}
			tel[name] = v
		}
		return snap{stats: srv.Stats, events: append([]ctrlplane.Event(nil), srv.Events...), tel: tel}
	}
	a, b := run(7), run(7)
	if a.stats != b.stats {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", a.stats, b.stats)
	}
	if !reflect.DeepEqual(a.events, b.events) {
		t.Fatalf("same seed, different event logs (%d vs %d events)", len(a.events), len(b.events))
	}
	if !reflect.DeepEqual(a.tel, b.tel) {
		t.Fatalf("same seed, different telemetry:\n%v\n%v", a.tel, b.tel)
	}
	if a.tel["ctrlplane0.detector.suspicions"] == 0 || a.tel["ctrlplane0.detector.probes"] == 0 {
		t.Fatalf("detector telemetry never moved: %v", a.tel)
	}
}
