package ctrlplane

import (
	"scalerpc/internal/host"
	"scalerpc/internal/nic"
)

// EchoService is a minimal Service for tests and control-plane benchmarks:
// it accepts every connection, echoes the dial payload back, and tracks
// which handles are live or parked.
type EchoService struct {
	next    uint64
	Live    map[uint64]int // handle → peer
	Parked  map[uint64]int
	Dropped map[uint64]CloseReason
}

// NewEchoService returns an empty echo service.
func NewEchoService() *EchoService {
	return &EchoService{
		Live:    map[uint64]int{},
		Parked:  map[uint64]int{},
		Dropped: map[uint64]CloseReason{},
	}
}

// Accept implements Service.
func (e *EchoService) Accept(t *host.Thread, peer int, qp *nic.QP, payload []byte) ([]byte, uint64, error) {
	e.next++
	e.Live[e.next] = peer
	return append([]byte(nil), payload...), e.next, nil
}

// Resume implements Service. Echo connections carry no per-connection
// state, so the parked handle is kept as-is.
func (e *EchoService) Resume(t *host.Thread, peer int, qp *nic.QP, payload []byte, handle uint64) ([]byte, uint64, error) {
	delete(e.Parked, handle)
	e.Live[handle] = peer
	return append([]byte(nil), payload...), handle, nil
}

// Closed implements Service.
func (e *EchoService) Closed(peer int, handle uint64, reason CloseReason) {
	if reason == CloseLeave {
		delete(e.Live, handle)
		e.Parked[handle] = peer
		return
	}
	delete(e.Live, handle)
	delete(e.Parked, handle)
	e.Dropped[handle] = reason
}
