// Package faults is the deterministic fault-injection plane: a seeded,
// virtual-time schedule of link faults (drop / corrupt / duplicate / delay),
// link flaps, node crashes and restarts, and named custom events, injected
// into the fabric through fabric.SetInterceptor and into the NICs through
// their reliability knobs.
//
// Everything is driven by the simulator clock and one split of the cluster
// RNG, so a (workload, scenario, seed) triple replays byte-identically —
// the property the determinism tests pin down. The plane itself only decides
// message fates and fires hooks; recovery is the consumers' job: the NIC's
// RC engine retransmits on timeout/NAK, the ScaleRPC client reconnects after
// a QP error, and the ScaleRPC server evicts clients that stop responding.
package faults

import (
	"scalerpc/internal/fabric"
	"scalerpc/internal/nic"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
	"scalerpc/internal/telemetry"
)

// PlaneStats counts injected faults (not their downstream effects — those
// show up in the NIC and transport counters).
type PlaneStats struct {
	Drops    uint64 // messages dropped by link-fault rules
	Corrupts uint64
	Dups     uint64
	Delays   uint64
	// PayloadCorrupts counts past-ICRC corruption injections: the message
	// is delivered with flipped payload bits instead of being discarded.
	PayloadCorrupts uint64

	// Jitters counts messages that received a random link-jitter delay;
	// Throttles counts messages whose serialization time was stretched by
	// a WireTimeScale rule.
	Jitters   uint64
	Throttles uint64

	LinkDownDrops uint64 // messages dropped because an endpoint was down
	Flaps         uint64
	Crashes       uint64
	Restarts      uint64
	Events        uint64
	// Stragglers counts straggler episode starts; StragglerDelays counts
	// messages delayed because an endpoint was straggling.
	Stragglers      uint64
	StragglerDelays uint64
}

// Plane executes one Scenario against one cluster.
type Plane struct {
	env   *sim.Env
	sc    *Scenario
	rng   *stats.RNG
	Stats PlaneStats

	// flapDepth counts overlapping down-windows per node; dead marks
	// crashed (and not yet restarted) nodes; straggling maps a node to its
	// active straggler episode (overlapping episodes: last to start wins).
	flapDepth  map[int]int
	dead       map[int]bool
	straggling map[int]Straggler

	onCrash        []func(node int)
	onRestart      []func(node int)
	onStraggler    []func(st Straggler)
	onStragglerEnd []func(node int)
	onEvent        map[string][]func(Event)
}

// New builds a plane and schedules the scenario's timed entries on env.
// Call before Env.Run; hooks registered afterwards (OnCrash etc.) still
// fire, since dispatch reads the hook lists at event time.
func New(env *sim.Env, sc *Scenario, rng *stats.RNG) *Plane {
	p := &Plane{
		env:        env,
		sc:         sc,
		rng:        rng,
		flapDepth:  make(map[int]int),
		dead:       make(map[int]bool),
		straggling: make(map[int]Straggler),
		onEvent:    make(map[string][]func(Event)),
	}
	p.schedule()
	return p
}

// Scenario returns the schedule this plane executes.
func (p *Plane) Scenario() *Scenario { return p.sc }

// at schedules fn at absolute virtual time t (clamped to now).
func (p *Plane) at(t int64, fn func()) {
	delay := sim.Time(t) - p.env.Now()
	if delay < 0 {
		delay = 0
	}
	p.env.At(sim.Duration(delay), fn)
}

func (p *Plane) schedule() {
	for _, fl := range p.sc.Flaps {
		fl := fl
		p.at(fl.At, func() {
			p.Stats.Flaps++
			p.flapDepth[fl.Node]++
		})
		p.at(fl.At+fl.DownNs, func() { p.flapDepth[fl.Node]-- })
	}
	for _, cr := range p.sc.Crashes {
		cr := cr
		p.at(cr.At, func() { p.crash(cr.Node) })
		if cr.RestartAfterNs > 0 {
			p.at(cr.At+cr.RestartAfterNs, func() { p.restart(cr.Node) })
		}
	}
	for _, st := range p.sc.Stragglers {
		st := st
		p.at(st.At, func() { p.stragglerStart(st) })
		if st.DurNs > 0 {
			p.at(st.At+st.DurNs, func() { p.stragglerEnd(st.Node) })
		}
	}
	for _, ev := range p.sc.Events {
		ev := ev
		p.at(ev.At, func() {
			p.Stats.Events++
			for _, fn := range p.onEvent[ev.Kind] {
				fn(ev)
			}
		})
	}
}

func (p *Plane) stragglerStart(st Straggler) {
	p.Stats.Stragglers++
	p.straggling[st.Node] = st
	for _, fn := range p.onStraggler {
		fn(st)
	}
}

func (p *Plane) stragglerEnd(node int) {
	if _, ok := p.straggling[node]; !ok {
		return
	}
	delete(p.straggling, node)
	for _, fn := range p.onStragglerEnd {
		fn(node)
	}
}

func (p *Plane) crash(node int) {
	if p.dead[node] {
		return
	}
	p.dead[node] = true
	p.Stats.Crashes++
	for _, fn := range p.onCrash {
		fn(node)
	}
}

func (p *Plane) restart(node int) {
	if !p.dead[node] {
		return
	}
	delete(p.dead, node)
	p.Stats.Restarts++
	for _, fn := range p.onRestart {
		fn(node)
	}
}

// CrashNode kills a node immediately, outside any scenario schedule (tests
// and interactive experiments).
func (p *Plane) CrashNode(node int) { p.crash(node) }

// RestartNode revives a previously crashed node.
func (p *Plane) RestartNode(node int) { p.restart(node) }

// NodeDown reports whether the node is currently unreachable (crashed or
// inside a flap window).
func (p *Plane) NodeDown(node int) bool {
	return p.dead[node] || p.flapDepth[node] > 0
}

// OnCrash registers a hook fired when a node crashes (consumers pause the
// node's processes, invalidate its registrations, fail its QPs).
func (p *Plane) OnCrash(fn func(node int)) { p.onCrash = append(p.onCrash, fn) }

// OnRestart registers a hook fired when a crashed node comes back.
func (p *Plane) OnRestart(fn func(node int)) { p.onRestart = append(p.onRestart, fn) }

// OnStraggler registers a hook fired when a straggler episode starts
// (consumers apply the CPU factor to the node's host).
func (p *Plane) OnStraggler(fn func(st Straggler)) { p.onStraggler = append(p.onStraggler, fn) }

// OnStragglerEnd registers a hook fired when a straggler episode ends.
func (p *Plane) OnStragglerEnd(fn func(node int)) {
	p.onStragglerEnd = append(p.onStragglerEnd, fn)
}

// NodeStraggling reports the node's active straggler episode, if any.
func (p *Plane) NodeStraggling(node int) (Straggler, bool) {
	st, ok := p.straggling[node]
	return st, ok
}

// OnEvent binds behaviour to a named scenario event kind.
func (p *Plane) OnEvent(kind string, fn func(Event)) {
	p.onEvent[kind] = append(p.onEvent[kind], fn)
}

// Install points the fabric's interceptor at this plane.
func (p *Plane) Install(fab *fabric.Fabric) { fab.SetInterceptor(p.intercept) }

// intercept decides one message's fate. Down endpoints drop everything;
// otherwise the first matching link rule draws the dice. All randomness
// comes from the plane's RNG in fabric call order, which the single-threaded
// simulator makes deterministic.
func (p *Plane) intercept(msg *fabric.Message) fabric.Verdict {
	if p.NodeDown(msg.Src) || p.NodeDown(msg.Dst) {
		p.Stats.LinkDownDrops++
		return fabric.Verdict{Drop: true}
	}
	now := int64(p.env.Now())
	var v fabric.Verdict
	for i := range p.sc.Links {
		lf := &p.sc.Links[i]
		if !lf.matches(msg.Src, msg.Dst, now) || !lf.classMatches(msg.Class) {
			continue
		}
		if lf.DropRate > 0 && p.rng.Float64() < lf.DropRate {
			p.Stats.Drops++
			v.Drop = true
			return v
		}
		if lf.CorruptRate > 0 && p.rng.Float64() < lf.CorruptRate {
			p.Stats.Corrupts++
			v.Corrupt = true
		}
		if lf.PayloadCorruptRate > 0 && p.rng.Float64() < lf.PayloadCorruptRate {
			p.Stats.PayloadCorrupts++
			v.CorruptPayload = true
		}
		if lf.DupRate > 0 && p.rng.Float64() < lf.DupRate {
			p.Stats.Dups++
			v.Duplicate = true
		}
		if lf.DelayNs > 0 && (lf.DelayRate <= 0 || lf.DelayRate >= 1 || p.rng.Float64() < lf.DelayRate) {
			p.Stats.Delays++
			v.ExtraDelay = sim.Duration(lf.DelayNs)
		}
		if lf.JitterNs > 0 {
			p.Stats.Jitters++
			v.ExtraDelay += sim.Duration(p.rng.Int63() % lf.JitterNs)
		}
		if lf.WireTimeScale > 1 {
			p.Stats.Throttles++
			v.WireTimeScale = lf.WireTimeScale
		}
		break
	}
	return p.stragglerVerdict(msg, v)
}

// stragglerVerdict layers straggler NIC slowdown on top of a link-rule
// verdict: messages touching a straggling endpoint gain its fixed delay
// plus seeded uniform jitter. Both endpoints straggling stacks both. The
// RNG is only consulted for actual jitter, in fabric call order, so the
// draw sequence stays deterministic.
func (p *Plane) stragglerVerdict(msg *fabric.Message, v fabric.Verdict) fabric.Verdict {
	if len(p.straggling) == 0 || v.Drop {
		return v
	}
	apply := func(st Straggler) {
		p.Stats.StragglerDelays++
		v.ExtraDelay += sim.Duration(st.NICDelayNs)
		if st.NICJitterNs > 0 {
			v.ExtraDelay += sim.Duration(p.rng.Int63() % st.NICJitterNs)
		}
	}
	if st, ok := p.straggling[msg.Src]; ok && (st.NICDelayNs > 0 || st.NICJitterNs > 0) {
		apply(st)
	}
	if msg.Dst != msg.Src {
		if st, ok := p.straggling[msg.Dst]; ok && (st.NICDelayNs > 0 || st.NICJitterNs > 0) {
			apply(st)
		}
	}
	return v
}

// TuneNIC applies the scenario's reliability overrides to a NIC config. The
// lossless default disables the requester retransmit timer, which would turn
// every injected drop of a window-final packet into a hang, so a plane
// always enables it — 20µs unless the scenario says otherwise.
func (p *Plane) TuneNIC(cfg *nic.Config) { p.TuneNICNode(-1, cfg) }

// TuneNICNode is TuneNIC for a specific host: when the scenario scopes its
// overrides (NICTuning.Nodes), hosts outside the scope get only the
// retransmit floor. node -1 means "unscoped caller" and always applies.
func (p *Plane) TuneNICNode(node int, cfg *nic.Config) {
	t := p.sc.NIC
	if len(t.Nodes) > 0 && node >= 0 {
		scoped := false
		for _, n := range t.Nodes {
			if n == node {
				scoped = true
				break
			}
		}
		if !scoped {
			if cfg.RetransmitTimeout <= 0 {
				cfg.RetransmitTimeout = 20 * sim.Microsecond
			}
			return
		}
	}
	if t.RetransmitTimeoutNs > 0 {
		cfg.RetransmitTimeout = sim.Duration(t.RetransmitTimeoutNs)
	} else if cfg.RetransmitTimeout <= 0 {
		cfg.RetransmitTimeout = 20 * sim.Microsecond
	}
	if t.RetryCount > 0 {
		cfg.RetryCount = t.RetryCount
	}
	if t.RNRTimeoutNs > 0 {
		cfg.RNRTimeout = sim.Duration(t.RNRTimeoutNs)
	}
	if t.RNRRetryCount > 0 {
		cfg.RNRRetryCount = t.RNRRetryCount
	}
}

// Register exposes the plane's counters under the given scope (conventionally
// "faults", giving faults.injected.drops etc. in -metrics dumps).
func (p *Plane) Register(sc telemetry.Scope) {
	sc.CounterVar("injected.drops", &p.Stats.Drops)
	sc.CounterVar("injected.corrupts", &p.Stats.Corrupts)
	sc.CounterVar("injected.payload_corrupts", &p.Stats.PayloadCorrupts)
	sc.CounterVar("injected.dups", &p.Stats.Dups)
	sc.CounterVar("injected.delays", &p.Stats.Delays)
	sc.CounterVar("injected.jitters", &p.Stats.Jitters)
	sc.CounterVar("injected.throttles", &p.Stats.Throttles)
	sc.CounterVar("link.down_drops", &p.Stats.LinkDownDrops)
	sc.CounterVar("flaps", &p.Stats.Flaps)
	sc.CounterVar("crashes", &p.Stats.Crashes)
	sc.CounterVar("restarts", &p.Stats.Restarts)
	sc.CounterVar("stragglers", &p.Stats.Stragglers)
	sc.CounterVar("straggler_delays", &p.Stats.StragglerDelays)
	sc.CounterVar("events", &p.Stats.Events)
}
