package faults_test

import (
	"reflect"
	"testing"

	"scalerpc/internal/fabric"
	"scalerpc/internal/faults"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
)

// grayDelivery is one observed arrival, keyed by the send schedule.
type grayDelivery struct {
	at    sim.Time
	seq   int
	class byte
}

// runGrayComposition drives one seeded run of an asymmetric gray schedule
// on the 0↔1 link pair: a one-way partition 0→1, and on the reverse
// direction a keepalive-only loss rule stacked on a degraded link
// (delay + jitter + wire-time throttle), with a node flap afterwards.
func runGrayComposition(t *testing.T, seed uint64) (faults.PlaneStats, []grayDelivery, []grayDelivery) {
	t.Helper()
	const (
		grayFrom = 20_000
		grayTo   = 60_000
		flapAt   = 70_000
		flapDur  = 10_000
	)
	sc := &faults.Scenario{
		Name: "gray-composition",
		Links: []faults.LinkFault{
			// One-way partition: 0→1 silent, 1→0 untouched by this rule.
			faults.OneWayPartition(0, 1, grayFrom, grayTo),
			// Keepalive-class loss on 1→0; data falls through to the
			// degraded-link rule below (class mismatch keeps matching).
			{Src: 1, Dst: 0, From: grayFrom, Until: grayTo, DropRate: 1, Class: faults.ClassKeepalive},
			faults.DegradedLink(1, 0, grayFrom, grayTo, 3000, 2000, 4),
		},
		Flaps: []faults.Flap{{Node: 1, At: flapAt, DownNs: flapDur}},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}

	env := sim.NewEnv()
	fab := fabric.New(env, fabric.DefaultConfig(), 2)
	p := faults.New(env, sc, stats.NewRNG(seed))
	p.Install(fab)

	var to1, to0 []grayDelivery
	fab.Port(1).OnDeliver(func(m *fabric.Message) {
		to1 = append(to1, grayDelivery{env.Now(), m.Payload.(int), m.Class})
	})
	fab.Port(0).OnDeliver(func(m *fabric.Message) {
		to0 = append(to0, grayDelivery{env.Now(), m.Payload.(int), m.Class})
	})
	// One send per direction every 1 µs through all three phases; the
	// reverse direction alternates data and keepalive frames.
	for i := 0; i < 90; i++ {
		i := i
		env.At(sim.Duration(i)*1000, func() {
			fab.Send(&fabric.Message{Src: 0, Dst: 1, Bytes: 64, Payload: i})
			cl := fabric.ClassData
			if i%2 == 1 {
				cl = fabric.ClassKeepalive
			}
			fab.Send(&fabric.Message{Src: 1, Dst: 0, Bytes: 64, Payload: i, Class: cl})
		})
	}
	env.Run()
	return p.Stats, to1, to0
}

// TestGrayRuleComposition checks that stacked rules on one link pair each
// apply to their own direction and message class.
func TestGrayRuleComposition(t *testing.T) {
	st, to1, to0 := runGrayComposition(t, 11)

	sentAt := func(seq int) sim.Time { return sim.Time(seq) * 1000 }
	inGray := func(seq int) bool { return sentAt(seq) >= 20_000 && sentAt(seq) < 60_000 }
	inFlap := func(seq int) bool { return sentAt(seq) >= 70_000 && sentAt(seq) < 80_000 }

	// Forward direction: the one-way partition silences 0→1 in the gray
	// window and the flap silences it again; everything else arrives.
	for _, d := range to1 {
		if inGray(d.seq) {
			t.Errorf("0→1 seq %d delivered inside the one-way partition", d.seq)
		}
		if inFlap(d.seq) {
			t.Errorf("0→1 seq %d delivered inside the flap", d.seq)
		}
	}

	// Reverse direction: keepalives are lost in the gray window, data
	// still flows — but slower (delay + 4× wire time + jitter).
	var grayData, healthyData []sim.Duration
	grayKeepalives := 0
	for _, d := range to0 {
		lat := sim.Duration(d.at - sentAt(d.seq))
		switch {
		case inGray(d.seq) && d.class == fabric.ClassKeepalive:
			grayKeepalives++
		case inGray(d.seq):
			grayData = append(grayData, lat)
		case d.class == fabric.ClassData && !inFlap(d.seq):
			healthyData = append(healthyData, lat)
		}
	}
	if grayKeepalives != 0 {
		t.Errorf("%d keepalives survived the keepalive-loss rule", grayKeepalives)
	}
	if len(grayData) == 0 {
		t.Fatal("degraded link delivered no data at all — it must slow, not silence")
	}
	minGray, maxHealthy := grayData[0], sim.Duration(0)
	for _, l := range grayData {
		if l < minGray {
			minGray = l
		}
	}
	for _, l := range healthyData {
		if l > maxHealthy {
			maxHealthy = l
		}
	}
	if minGray <= maxHealthy {
		t.Errorf("degraded-link latency floor %d ≤ healthy ceiling %d", minGray, maxHealthy)
	}

	if st.Jitters == 0 || st.Throttles == 0 {
		t.Errorf("degraded-link dice never fired: %+v", st)
	}
	if st.Drops == 0 || st.LinkDownDrops == 0 || st.Flaps != 1 {
		t.Errorf("partition/flap accounting off: %+v", st)
	}
}

// TestGrayCompositionDeterministic pins the seeded replay contract for the
// new asymmetric primitives: identical seeds give identical fates and
// delivery times; a different seed moves the jittered arrivals.
func TestGrayCompositionDeterministic(t *testing.T) {
	s1, a1, b1 := runGrayComposition(t, 33)
	s2, a2, b2 := runGrayComposition(t, 33)
	if s1 != s2 || !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(b1, b2) {
		t.Fatal("same seed produced different gray-fault runs")
	}
	_, _, b3 := runGrayComposition(t, 34)
	if reflect.DeepEqual(b1, b3) {
		t.Fatal("different seeds produced identical jittered deliveries")
	}
}
