package faults_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/fabric"
	"scalerpc/internal/faults"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
)

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := &faults.Scenario{
		Name: "kitchen-sink",
		Seed: 99,
		Links: []faults.LinkFault{
			{Src: 0, Dst: 2, From: 1000, Until: 9000, DropRate: 0.01, CorruptRate: 0.002},
			{Src: -1, Dst: -1, DupRate: 0.005, DelayRate: 0.1, DelayNs: 3000},
		},
		Flaps:   []faults.Flap{{Node: 1, At: 5000, DownNs: 2000}},
		Crashes: []faults.Crash{{Node: 2, At: 7000, RestartAfterNs: 4000}},
		Events:  []faults.Event{{Kind: "mr-invalidate", Node: 1, At: 6000}},
		NIC:     faults.NICTuning{RetransmitTimeoutNs: 10000, RetryCount: 5},
	}
	back, err := faults.ParseScenario(sc.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Fatalf("round trip mutated the scenario:\n%+v\nvs\n%+v", sc, back)
	}
}

func TestValidateRejectsBrokenScenarios(t *testing.T) {
	bad := []*faults.Scenario{
		{Links: []faults.LinkFault{{Src: -1, Dst: -1, DropRate: 1.5}}},
		{Links: []faults.LinkFault{{Src: -1, Dst: -1, CorruptRate: -0.1}}},
		{Links: []faults.LinkFault{{Src: -1, Dst: -1, From: -5}}},
		{Flaps: []faults.Flap{{Node: 0, At: 100}}}, // down_ns missing
		{Crashes: []faults.Crash{{Node: 0, At: -1}}},
		{Events: []faults.Event{{At: 100}}}, // kind missing
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("scenario %d validated but should not have", i)
		}
	}
	if _, err := faults.ParseScenario([]byte(`{"links":[{"src":-1,"dst":-1,"drop_rate":2}]}`)); err == nil {
		t.Error("ParseScenario accepted an out-of-range rate")
	}
	if _, err := faults.ParseScenario([]byte(`not json`)); err == nil {
		t.Error("ParseScenario accepted garbage")
	}
	if err := faults.DropAll("ok", 0.02).Validate(); err != nil {
		t.Errorf("DropAll scenario invalid: %v", err)
	}
}

// TestSameSeedSameFates pins the determinism contract: two planes built from
// the same (scenario, seed) over identical traffic must make identical
// per-message decisions, down to delivery times.
func TestSameSeedSameFates(t *testing.T) {
	sc := &faults.Scenario{
		Name: "dice",
		Links: []faults.LinkFault{{
			Src: -1, Dst: -1,
			DropRate: 0.3, CorruptRate: 0.1, DupRate: 0.2, DelayRate: 0.1, DelayNs: 2000,
		}},
	}
	type delivery struct {
		at      sim.Time
		payload interface{}
	}
	run := func() (faults.PlaneStats, []delivery) {
		env := sim.NewEnv()
		fab := fabric.New(env, fabric.DefaultConfig(), 2)
		p := faults.New(env, sc, stats.NewRNG(42))
		p.Install(fab)
		var got []delivery
		fab.Port(1).OnDeliver(func(m *fabric.Message) {
			got = append(got, delivery{at: env.Now(), payload: m.Payload})
		})
		for i := 0; i < 400; i++ {
			i := i
			env.At(sim.Duration(i)*100, func() {
				fab.Send(&fabric.Message{Src: 0, Dst: 1, Bytes: 64 + i%512, Payload: i})
			})
		}
		env.Run()
		return p.Stats, got
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 {
		t.Fatalf("same seed, different fault stats:\n%+v\nvs\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("same seed, different deliveries: %d vs %d messages", len(d1), len(d2))
	}
	// The rates are high enough that every fault kind must have fired.
	if s1.Drops == 0 || s1.Corrupts == 0 || s1.Dups == 0 || s1.Delays == 0 {
		t.Fatalf("a fault kind never fired: %+v", s1)
	}
	// Drops and corruptions must actually reduce deliveries (dups add some
	// back, but 30% drop + 10% corrupt dominates 20% dup).
	if len(d1) >= 400 {
		t.Fatalf("%d deliveries out of 400 sends despite drops", len(d1))
	}
}

func TestFlapWindowBlocksTraffic(t *testing.T) {
	sc := &faults.Scenario{
		Name:  "flap",
		Flaps: []faults.Flap{{Node: 1, At: 10_000, DownNs: 10_000}},
	}
	env := sim.NewEnv()
	fab := fabric.New(env, fabric.DefaultConfig(), 2)
	p := faults.New(env, sc, stats.NewRNG(1))
	p.Install(fab)
	delivered := 0
	fab.Port(1).OnDeliver(func(*fabric.Message) { delivered++ })
	probe := func(at sim.Duration, wantDown bool) {
		env.At(at, func() {
			if p.NodeDown(1) != wantDown {
				t.Errorf("NodeDown(1) at %d = %v, want %v", at, !wantDown, wantDown)
			}
			fab.Send(&fabric.Message{Src: 0, Dst: 1, Bytes: 32})
		})
	}
	probe(5_000, false)  // before the flap
	probe(15_000, true)  // inside the window
	probe(25_000, false) // after recovery
	env.Run()
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2 (the in-flap send is dropped)", delivered)
	}
	if p.Stats.Flaps != 1 || p.Stats.LinkDownDrops != 1 {
		t.Fatalf("stats = %+v, want 1 flap and 1 down-drop", p.Stats)
	}
}

func TestCrashRestartSchedulingAndHooks(t *testing.T) {
	sc := &faults.Scenario{
		Name:    "crash",
		Crashes: []faults.Crash{{Node: 2, At: 1_000, RestartAfterNs: 2_000}},
	}
	env := sim.NewEnv()
	p := faults.New(env, sc, stats.NewRNG(1))
	var crashedAt, restartedAt sim.Time
	var crashedNode int
	p.OnCrash(func(node int) { crashedNode, crashedAt = node, env.Now() })
	p.OnRestart(func(node int) { restartedAt = env.Now() })
	env.At(1_500, func() {
		if !p.NodeDown(2) {
			t.Error("node 2 not down mid-crash")
		}
	})
	env.Run()
	if crashedNode != 2 || crashedAt != 1_000 {
		t.Fatalf("crash hook: node %d at %d, want node 2 at 1000", crashedNode, crashedAt)
	}
	if restartedAt != 3_000 {
		t.Fatalf("restart at %d, want 3000", restartedAt)
	}
	if p.NodeDown(2) {
		t.Fatal("node 2 still down after restart")
	}
	if p.Stats.Crashes != 1 || p.Stats.Restarts != 1 {
		t.Fatalf("stats = %+v", p.Stats)
	}
	// Manual kills are idempotent.
	p.CrashNode(2)
	p.CrashNode(2)
	if p.Stats.Crashes != 2 || !p.NodeDown(2) {
		t.Fatalf("manual crash: stats = %+v, down = %v", p.Stats, p.NodeDown(2))
	}
	p.RestartNode(2)
	p.RestartNode(2)
	if p.Stats.Restarts != 2 || p.NodeDown(2) {
		t.Fatalf("manual restart: stats = %+v", p.Stats)
	}
}

func TestTuneNICEnablesTimerAndAppliesOverrides(t *testing.T) {
	env := sim.NewEnv()
	p := faults.New(env, &faults.Scenario{Name: "defaults"}, stats.NewRNG(1))
	var cfg nic.Config
	p.TuneNIC(&cfg)
	if cfg.RetransmitTimeout != 20*sim.Microsecond {
		t.Fatalf("default RetransmitTimeout = %d, want 20µs", cfg.RetransmitTimeout)
	}
	p2 := faults.New(env, &faults.Scenario{
		Name: "tuned",
		NIC:  faults.NICTuning{RetransmitTimeoutNs: 5000, RetryCount: 3, RNRTimeoutNs: 4000, RNRRetryCount: 2},
	}, stats.NewRNG(1))
	var cfg2 nic.Config
	p2.TuneNIC(&cfg2)
	if cfg2.RetransmitTimeout != 5000 || cfg2.RetryCount != 3 ||
		cfg2.RNRTimeout != 4000 || cfg2.RNRRetryCount != 2 {
		t.Fatalf("overrides not applied: %+v", cfg2)
	}
}

// TestMRInvalidateEventFullCircle binds the stock "mr-invalidate" event kind
// to an actual deregistration on a live cluster: writes before the event
// land, writes after fail with a remote access error — the fault plane
// driving a real consumer through virtual time.
func TestMRInvalidateEventFullCircle(t *testing.T) {
	c := cluster.New(cluster.Default(2))
	defer c.Close()
	sc := &faults.Scenario{
		Name:   "mr",
		Events: []faults.Event{{Kind: "mr-invalidate", Node: 1, At: 20_000}},
	}
	p := c.InstallFaults(sc)
	a, b := c.Hosts[0], c.Hosts[1]
	cq := a.NIC.CreateCQ()
	qa := a.NIC.CreateQP(nic.RC, cq, cq)
	cqB := b.NIC.CreateCQ()
	qb := b.NIC.CreateQP(nic.RC, cqB, cqB)
	nic.Connect(qa, qb)
	src := a.Mem.Register(64, memory.PageSize4K, memory.LocalWrite)
	dst := b.Mem.Register(64, memory.PageSize4K, memory.LocalWrite|memory.RemoteWrite)
	p.OnEvent("mr-invalidate", func(ev faults.Event) {
		if ev.Node != 1 {
			t.Errorf("event node = %d, want 1", ev.Node)
		}
		b.Mem.Deregister(dst)
	})
	write := func(at sim.Duration, wrid uint64) {
		c.Env.At(at, func() {
			qa.PostSend(nic.SendWR{WRID: wrid, Op: nic.OpWrite, Signaled: true,
				LKey: src.LKey, LAddr: src.Base, Len: 8,
				RKey: dst.RKey, RAddr: dst.Base})
		})
	}
	write(0, 1)      // lands
	write(30_000, 2) // region gone → remote access error
	c.Env.Run()
	cqes := cq.Poll(8)
	if len(cqes) != 2 {
		t.Fatalf("completions = %d, want 2", len(cqes))
	}
	if cqes[0].WRID != 1 || cqes[0].Status != nic.CQOK {
		t.Fatalf("pre-event write: %+v, want CQOK", cqes[0])
	}
	if cqes[1].WRID != 2 || cqes[1].Status != nic.CQRemoteAccessError {
		t.Fatalf("post-event write: %+v, want CQRemoteAccessError", cqes[1])
	}
	if p.Stats.Events != 1 {
		t.Fatalf("Events = %d, want 1", p.Stats.Events)
	}
}

// TestRegisterExposesCounters checks the telemetry naming contract used by
// the -metrics dumps and the sampler patterns.
func TestRegisterExposesCounters(t *testing.T) {
	c := cluster.New(cluster.Default(2))
	defer c.Close()
	c.InstallFaults(faults.DropAll("d", 0.3))
	a, b := c.Hosts[0], c.Hosts[1]
	cq := a.NIC.CreateCQ()
	qa := a.NIC.CreateQP(nic.RC, cq, cq)
	cqB := b.NIC.CreateCQ()
	qb := b.NIC.CreateQP(nic.RC, cqB, cqB)
	nic.Connect(qa, qb)
	src := a.Mem.Register(64, memory.PageSize4K, memory.LocalWrite)
	dst := b.Mem.Register(64, memory.PageSize4K, memory.LocalWrite|memory.RemoteWrite)
	for i := 0; i < 20; i++ {
		qa.PostSend(nic.SendWR{Op: nic.OpWrite, Signaled: true,
			LKey: src.LKey, LAddr: src.Base, Len: 8,
			RKey: dst.RKey, RAddr: dst.Base})
	}
	c.Env.Run()
	raw, err := json.Marshal(c.Telemetry)
	if err != nil {
		t.Fatal(err)
	}
	dump := string(raw)
	for _, name := range []string{
		"faults.injected.drops", "faults.injected.corrupts", "faults.injected.dups",
		"faults.injected.delays", "faults.link.down_drops", "faults.flaps",
		"faults.crashes", "faults.restarts", "faults.events",
	} {
		if !strings.Contains(dump, name) {
			t.Fatalf("registry dump missing %q", name)
		}
	}
	if c.Faults.Stats.Drops == 0 {
		t.Fatal("no drops at 30% rate over 20 writes")
	}
}
