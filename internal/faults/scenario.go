package faults

import (
	"encoding/json"
	"fmt"
	"os"
)

// LinkFault injects probabilistic per-message faults on matching directed
// links during a virtual-time window. The first matching rule decides a
// message's fate, so order more specific rules before catch-alls.
type LinkFault struct {
	// Src/Dst select the directed link by fabric port; -1 matches any port.
	Src int `json:"src"`
	Dst int `json:"dst"`

	// From/Until bound the active window in virtual nanoseconds since the
	// start of the run; Until == 0 means "until the end of time".
	From  int64 `json:"from_ns,omitempty"`
	Until int64 `json:"until_ns,omitempty"`

	// DropRate is the probability a matched message vanishes at the switch.
	DropRate float64 `json:"drop_rate,omitempty"`
	// CorruptRate is the probability a matched message arrives with a bad
	// ICRC (consumes full path bandwidth, then the receiver discards it).
	CorruptRate float64 `json:"corrupt_rate,omitempty"`
	// PayloadCorruptRate is the probability a matched message is delivered
	// with flipped payload bits — corruption past the ICRC (DMA fault),
	// which only the RPC layer's frame CRC can catch.
	PayloadCorruptRate float64 `json:"payload_corrupt_rate,omitempty"`
	// DupRate is the probability a matched message is delivered twice.
	DupRate float64 `json:"dup_rate,omitempty"`
	// DelayNs adds a latency spike to a DelayRate fraction of matched
	// messages (DelayRate 0 with DelayNs > 0 means every message).
	DelayRate float64 `json:"delay_rate,omitempty"`
	DelayNs   int64   `json:"delay_ns,omitempty"`
}

// matches reports whether the rule applies to a message on src→dst at time
// now (virtual ns).
func (lf *LinkFault) matches(src, dst int, now int64) bool {
	if lf.Src >= 0 && lf.Src != src {
		return false
	}
	if lf.Dst >= 0 && lf.Dst != dst {
		return false
	}
	if now < lf.From {
		return false
	}
	if lf.Until > 0 && now >= lf.Until {
		return false
	}
	return true
}

// Flap takes a node's link fully down for a window: every message to or from
// the node is dropped at the switch (both directions, modelling a port or
// cable failure), then service resumes.
type Flap struct {
	Node   int   `json:"node"`
	At     int64 `json:"at_ns"`
	DownNs int64 `json:"down_ns"`
}

// Crash kills a node at At: its link goes down and the registered OnCrash
// hooks fire (consumers pause the node's processes and invalidate its
// memory registrations). RestartAfterNs > 0 brings the node back after that
// long — a pause/resume; 0 leaves it dead for the rest of the run.
type Crash struct {
	Node           int   `json:"node"`
	At             int64 `json:"at_ns"`
	RestartAfterNs int64 `json:"restart_after_ns,omitempty"`
}

// Event is a named scheduled hook with no built-in semantics: consumers bind
// behaviour with Plane.OnEvent. The stock kinds used by tests are
// "mr-invalidate" (deregister a node's exposed memory region, so remote
// accesses start failing with access errors) and anything experiment code
// invents.
type Event struct {
	Kind string `json:"kind"`
	Node int    `json:"node"`
	At   int64  `json:"at_ns"`
}

// NICTuning overrides the NIC reliability knobs for a faulty run. Zero
// fields keep the defaults TuneNIC picks (the stock lossless configuration
// disables the retransmit timer entirely, which would turn every lost
// packet into a hang).
type NICTuning struct {
	RetransmitTimeoutNs int64 `json:"retransmit_timeout_ns,omitempty"`
	RetryCount          int   `json:"retry_count,omitempty"`
	RNRTimeoutNs        int64 `json:"rnr_timeout_ns,omitempty"`
	RNRRetryCount       int   `json:"rnr_retry_count,omitempty"`
}

// Scenario is a complete, serializable fault schedule. Driven entirely by
// virtual time and a seeded RNG, the same scenario over the same workload
// produces byte-identical runs.
type Scenario struct {
	Name string `json:"name"`
	// Seed, when non-zero, seeds the plane's RNG directly; 0 derives it
	// from the cluster seed, so the whole run is still one seed.
	Seed    uint64      `json:"seed,omitempty"`
	Links   []LinkFault `json:"links,omitempty"`
	Flaps   []Flap      `json:"flaps,omitempty"`
	Crashes []Crash     `json:"crashes,omitempty"`
	Events  []Event     `json:"events,omitempty"`
	NIC     NICTuning   `json:"nic,omitempty"`
}

// DropAll returns a minimal scenario dropping every message with the given
// probability on every link — the workhorse for loss-rate sweeps.
func DropAll(name string, rate float64) *Scenario {
	return &Scenario{
		Name:  name,
		Links: []LinkFault{{Src: -1, Dst: -1, DropRate: rate}},
	}
}

// ParseScenario decodes and validates a JSON scenario.
func ParseScenario(data []byte) (*Scenario, error) {
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("faults: parse scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// LoadScenario reads a scenario from a JSON file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	sc, err := ParseScenario(data)
	if err != nil {
		return nil, fmt.Errorf("faults: %s: %w", path, err)
	}
	return sc, nil
}

// Validate checks rates and times for sanity.
func (s *Scenario) Validate() error {
	checkRate := func(what string, r float64) error {
		if r < 0 || r > 1 {
			return fmt.Errorf("faults: %s %g outside [0,1]", what, r)
		}
		return nil
	}
	for i, lf := range s.Links {
		for what, r := range map[string]float64{
			"drop_rate": lf.DropRate, "corrupt_rate": lf.CorruptRate,
			"payload_corrupt_rate": lf.PayloadCorruptRate,
			"dup_rate":             lf.DupRate, "delay_rate": lf.DelayRate,
		} {
			if err := checkRate(fmt.Sprintf("links[%d].%s", i, what), r); err != nil {
				return err
			}
		}
		if lf.From < 0 || lf.Until < 0 || lf.DelayNs < 0 {
			return fmt.Errorf("faults: links[%d] has a negative time", i)
		}
	}
	for i, fl := range s.Flaps {
		if fl.At < 0 || fl.DownNs <= 0 {
			return fmt.Errorf("faults: flaps[%d] needs at_ns >= 0 and down_ns > 0", i)
		}
	}
	for i, cr := range s.Crashes {
		if cr.At < 0 || cr.RestartAfterNs < 0 {
			return fmt.Errorf("faults: crashes[%d] has a negative time", i)
		}
	}
	for i, ev := range s.Events {
		if ev.Kind == "" {
			return fmt.Errorf("faults: events[%d] missing kind", i)
		}
		if ev.At < 0 {
			return fmt.Errorf("faults: events[%d] has a negative time", i)
		}
	}
	return nil
}

// JSON renders the scenario back out (stable field order via struct tags),
// handy for writing example files.
func (s *Scenario) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err) // no unmarshalable types in Scenario
	}
	return append(b, '\n')
}
