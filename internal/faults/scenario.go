package faults

import (
	"encoding/json"
	"fmt"
	"os"

	"scalerpc/internal/fabric"
)

// LinkFault injects probabilistic per-message faults on matching directed
// links during a virtual-time window. The first matching rule decides a
// message's fate, so order more specific rules before catch-alls.
type LinkFault struct {
	// Src/Dst select the directed link by fabric port; -1 matches any port.
	Src int `json:"src"`
	Dst int `json:"dst"`

	// From/Until bound the active window in virtual nanoseconds since the
	// start of the run; Until == 0 means "until the end of time".
	From  int64 `json:"from_ns,omitempty"`
	Until int64 `json:"until_ns,omitempty"`

	// DropRate is the probability a matched message vanishes at the switch.
	DropRate float64 `json:"drop_rate,omitempty"`
	// CorruptRate is the probability a matched message arrives with a bad
	// ICRC (consumes full path bandwidth, then the receiver discards it).
	CorruptRate float64 `json:"corrupt_rate,omitempty"`
	// PayloadCorruptRate is the probability a matched message is delivered
	// with flipped payload bits — corruption past the ICRC (DMA fault),
	// which only the RPC layer's frame CRC can catch.
	PayloadCorruptRate float64 `json:"payload_corrupt_rate,omitempty"`
	// DupRate is the probability a matched message is delivered twice.
	DupRate float64 `json:"dup_rate,omitempty"`
	// DelayNs adds a latency spike to a DelayRate fraction of matched
	// messages (DelayRate 0 with DelayNs > 0 means every message).
	DelayRate float64 `json:"delay_rate,omitempty"`
	DelayNs   int64   `json:"delay_ns,omitempty"`

	// JitterNs adds a uniform random delay in [0, JitterNs) to every
	// matched message — a degraded link's latency variance, as opposed to
	// DelayNs's fixed spike. Drawn from the plane's seeded RNG.
	JitterNs int64 `json:"jitter_ns,omitempty"`
	// WireTimeScale > 1 stretches matched messages' serialization time by
	// that factor (a link renegotiated below nominal rate). 0 or 1 is
	// nominal bandwidth; values below 1 are rejected by Validate.
	WireTimeScale float64 `json:"wire_time_scale,omitempty"`
	// Class restricts the rule to one traffic class: "" matches any,
	// otherwise one of "data", "control", "keepalive". A non-matching
	// class falls through to later rules, so a keepalive-only loss rule
	// composes with a catch-all behind it.
	Class string `json:"class,omitempty"`
}

// Link-fault class selector values (LinkFault.Class).
const (
	ClassAny       = ""
	ClassData      = "data"
	ClassControl   = "control"
	ClassKeepalive = "keepalive"
)

// classMatches reports whether the rule's class selector accepts a message
// of the given fabric class.
func (lf *LinkFault) classMatches(class byte) bool {
	switch lf.Class {
	case ClassAny:
		return true
	case ClassData:
		return class == fabric.ClassData
	case ClassControl:
		return class == fabric.ClassControl
	case ClassKeepalive:
		return class == fabric.ClassKeepalive
	}
	return false
}

// matches reports whether the rule applies to a message on src→dst at time
// now (virtual ns).
func (lf *LinkFault) matches(src, dst int, now int64) bool {
	if lf.Src >= 0 && lf.Src != src {
		return false
	}
	if lf.Dst >= 0 && lf.Dst != dst {
		return false
	}
	if now < lf.From {
		return false
	}
	if lf.Until > 0 && now >= lf.Until {
		return false
	}
	return true
}

// Flap takes a node's link fully down for a window: every message to or from
// the node is dropped at the switch (both directions, modelling a port or
// cable failure), then service resumes.
type Flap struct {
	Node   int   `json:"node"`
	At     int64 `json:"at_ns"`
	DownNs int64 `json:"down_ns"`
}

// Crash kills a node at At: its link goes down and the registered OnCrash
// hooks fire (consumers pause the node's processes and invalidate its
// memory registrations). RestartAfterNs > 0 brings the node back after that
// long — a pause/resume; 0 leaves it dead for the rest of the run.
type Crash struct {
	Node           int   `json:"node"`
	At             int64 `json:"at_ns"`
	RestartAfterNs int64 `json:"restart_after_ns,omitempty"`
}

// Straggler degrades a node without killing it — the canonical gray
// failure. For the window [At, At+DurNs) the node's host CPU runs
// CPUFactor times slower (applied through the plane's OnStraggler hooks)
// and every message to or from its NIC gains NICDelayNs fixed delay plus a
// uniform random delay in [0, NICJitterNs). The jitter matters: a purely
// constant delay shifts all arrivals uniformly and never widens
// inter-arrival gaps, so it is invisible to timeout-based detectors.
type Straggler struct {
	Node int   `json:"node"`
	At   int64 `json:"at_ns"`
	// DurNs is the episode length; 0 means the rest of the run.
	DurNs int64 `json:"dur_ns,omitempty"`
	// CPUFactor scales the node's CPU cost (2 = half speed); values <= 1
	// leave the CPU alone.
	CPUFactor float64 `json:"cpu_factor,omitempty"`
	// NICDelayNs/NICJitterNs delay the node's wire traffic in both
	// directions.
	NICDelayNs  int64 `json:"nic_delay_ns,omitempty"`
	NICJitterNs int64 `json:"nic_jitter_ns,omitempty"`
}

// Event is a named scheduled hook with no built-in semantics: consumers bind
// behaviour with Plane.OnEvent. The stock kinds used by tests are
// "mr-invalidate" (deregister a node's exposed memory region, so remote
// accesses start failing with access errors) and anything experiment code
// invents.
type Event struct {
	Kind string `json:"kind"`
	Node int    `json:"node"`
	At   int64  `json:"at_ns"`
}

// NICTuning overrides the NIC reliability knobs for a faulty run. Zero
// fields keep the defaults TuneNIC picks (the stock lossless configuration
// disables the retransmit timer entirely, which would turn every lost
// packet into a hang).
type NICTuning struct {
	RetransmitTimeoutNs int64 `json:"retransmit_timeout_ns,omitempty"`
	RetryCount          int   `json:"retry_count,omitempty"`
	RNRTimeoutNs        int64 `json:"rnr_timeout_ns,omitempty"`
	RNRRetryCount       int   `json:"rnr_retry_count,omitempty"`
	// Nodes, when non-empty, restricts the overrides to those hosts; the
	// rest of the cluster keeps stock tuning (plus the plane's retransmit
	// floor). An asymmetric-fault schedule tunes only the sick endpoint —
	// relaxing (or tightening) every healthy host's retry budget alongside
	// it would leak the failure into peers the schedule never touched.
	Nodes []int `json:"nodes,omitempty"`
}

// Scenario is a complete, serializable fault schedule. Driven entirely by
// virtual time and a seeded RNG, the same scenario over the same workload
// produces byte-identical runs.
type Scenario struct {
	Name string `json:"name"`
	// Seed, when non-zero, seeds the plane's RNG directly; 0 derives it
	// from the cluster seed, so the whole run is still one seed.
	Seed       uint64      `json:"seed,omitempty"`
	Links      []LinkFault `json:"links,omitempty"`
	Flaps      []Flap      `json:"flaps,omitempty"`
	Crashes    []Crash     `json:"crashes,omitempty"`
	Stragglers []Straggler `json:"stragglers,omitempty"`
	Events     []Event     `json:"events,omitempty"`
	NIC        NICTuning   `json:"nic,omitempty"`
}

// DropAll returns a minimal scenario dropping every message with the given
// probability on every link — the workhorse for loss-rate sweeps.
func DropAll(name string, rate float64) *Scenario {
	return &Scenario{
		Name:  name,
		Links: []LinkFault{{Src: -1, Dst: -1, DropRate: rate}},
	}
}

// OneWayPartition returns a rule dropping everything src→dst for a window
// while the reverse direction flows untouched — the asymmetric partition
// that makes fixed symmetric timeouts lie (src looks dead to dst, dst
// looks fine to src).
func OneWayPartition(src, dst int, from, until int64) LinkFault {
	return LinkFault{Src: src, Dst: dst, From: from, Until: until, DropRate: 1}
}

// DegradedLink returns a rule that keeps a directed link alive but sick
// for a window: fixed extra latency, uniform jitter on top, and
// serialization stretched by scale (<= 1 for nominal rate). No loss — the
// gray mode where everything still arrives, just late.
func DegradedLink(src, dst int, from, until, delayNs, jitterNs int64, scale float64) LinkFault {
	return LinkFault{
		Src: src, Dst: dst, From: from, Until: until,
		DelayNs: delayNs, JitterNs: jitterNs, WireTimeScale: scale,
	}
}

// ParseScenario decodes and validates a JSON scenario.
func ParseScenario(data []byte) (*Scenario, error) {
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("faults: parse scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// LoadScenario reads a scenario from a JSON file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	sc, err := ParseScenario(data)
	if err != nil {
		return nil, fmt.Errorf("faults: %s: %w", path, err)
	}
	return sc, nil
}

// Validate checks rates and times for sanity.
func (s *Scenario) Validate() error {
	checkRate := func(what string, r float64) error {
		if r < 0 || r > 1 {
			return fmt.Errorf("faults: %s %g outside [0,1]", what, r)
		}
		return nil
	}
	for i, lf := range s.Links {
		for what, r := range map[string]float64{
			"drop_rate": lf.DropRate, "corrupt_rate": lf.CorruptRate,
			"payload_corrupt_rate": lf.PayloadCorruptRate,
			"dup_rate":             lf.DupRate, "delay_rate": lf.DelayRate,
		} {
			if err := checkRate(fmt.Sprintf("links[%d].%s", i, what), r); err != nil {
				return err
			}
		}
		if lf.From < 0 || lf.Until < 0 || lf.DelayNs < 0 || lf.JitterNs < 0 {
			return fmt.Errorf("faults: links[%d] has a negative time", i)
		}
		if lf.WireTimeScale != 0 && lf.WireTimeScale < 1 {
			return fmt.Errorf("faults: links[%d].wire_time_scale %g below 1", i, lf.WireTimeScale)
		}
		switch lf.Class {
		case ClassAny, ClassData, ClassControl, ClassKeepalive:
		default:
			return fmt.Errorf("faults: links[%d].class %q unknown", i, lf.Class)
		}
	}
	for i, fl := range s.Flaps {
		if fl.At < 0 || fl.DownNs <= 0 {
			return fmt.Errorf("faults: flaps[%d] needs at_ns >= 0 and down_ns > 0", i)
		}
	}
	for i, cr := range s.Crashes {
		if cr.At < 0 || cr.RestartAfterNs < 0 {
			return fmt.Errorf("faults: crashes[%d] has a negative time", i)
		}
	}
	for i, st := range s.Stragglers {
		if st.At < 0 || st.DurNs < 0 || st.NICDelayNs < 0 || st.NICJitterNs < 0 {
			return fmt.Errorf("faults: stragglers[%d] has a negative time", i)
		}
		if st.CPUFactor < 0 {
			return fmt.Errorf("faults: stragglers[%d].cpu_factor negative", i)
		}
		if st.CPUFactor <= 1 && st.NICDelayNs == 0 && st.NICJitterNs == 0 {
			return fmt.Errorf("faults: stragglers[%d] degrades nothing", i)
		}
	}
	for i, ev := range s.Events {
		if ev.Kind == "" {
			return fmt.Errorf("faults: events[%d] missing kind", i)
		}
		if ev.At < 0 {
			return fmt.Errorf("faults: events[%d] has a negative time", i)
		}
	}
	return nil
}

// JSON renders the scenario back out (stable field order via struct tags),
// handy for writing example files.
func (s *Scenario) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err) // no unmarshalable types in Scenario
	}
	return append(b, '\n')
}
