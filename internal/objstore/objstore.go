// Package objstore generates the paper's object-store transactional
// workload (§4.2.1, Figure 16(a)): transactions over uniformly random keys
// with a configurable read set of r items and write set of w items,
// denoted (r, w) — the read-intensive OLTP benchmark style of FaSST.
package objstore

import (
	"encoding/binary"
	"fmt"

	"scalerpc/internal/stats"
	"scalerpc/internal/txn"
)

// Config shapes the workload.
type Config struct {
	Keys      int // total objects across all participants
	ValueSize int
	ReadSet   int // r
	WriteSet  int // w
}

// DefaultConfig is the (3,1) mix over 1 M objects with 40-byte values.
func DefaultConfig() Config {
	return Config{Keys: 1 << 20, ValueSize: 40, ReadSet: 3, WriteSet: 1}
}

// Key returns the i-th object key.
func Key(i int) []byte { return []byte(fmt.Sprintf("obj%012d", i)) }

// Load inserts all objects into their owning participants.
func Load(parts []*txn.Participant, cfg Config) error {
	val := make([]byte, cfg.ValueSize)
	for i := 0; i < cfg.Keys; i++ {
		k := Key(i)
		binary.LittleEndian.PutUint64(val, uint64(i))
		p := parts[txn.ShardKey(k, len(parts))]
		if _, err := p.Store.Put(nil, k, val); err != nil {
			return fmt.Errorf("objstore: load key %d: %w", i, err)
		}
	}
	return nil
}

// Gen produces transactions.
type Gen struct {
	cfg Config
	rng *stats.RNG
	buf []byte
}

// NewGen returns a generator with its own random stream.
func NewGen(cfg Config, seed uint64) *Gen {
	return &Gen{cfg: cfg, rng: stats.NewRNG(seed), buf: make([]byte, cfg.ValueSize)}
}

// Next builds one (r, w) transaction over distinct random keys.
func (g *Gen) Next() *txn.Txn {
	n := g.cfg.ReadSet + g.cfg.WriteSet
	picked := make(map[int]bool, n)
	keys := make([][]byte, 0, n)
	for len(keys) < n {
		i := g.rng.Intn(g.cfg.Keys)
		if picked[i] {
			continue
		}
		picked[i] = true
		keys = append(keys, Key(i))
	}
	t := &txn.Txn{
		Reads:  keys[:g.cfg.ReadSet],
		Writes: keys[g.cfg.ReadSet:],
	}
	if g.cfg.WriteSet > 0 {
		rng := g.rng
		size := g.cfg.ValueSize
		t.Apply = func(readVals, writeVals [][]byte) [][]byte {
			out := make([][]byte, len(writeVals))
			for i := range out {
				v := make([]byte, size)
				binary.LittleEndian.PutUint64(v, rng.Uint64())
				out[i] = v
			}
			return out
		}
	}
	return t
}
