package objstore_test

import (
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/mica"
	"scalerpc/internal/objstore"
	"scalerpc/internal/txn"
)

func TestLoadAndShape(t *testing.T) {
	c := cluster.New(cluster.Default(3))
	defer c.Close()
	var parts []*txn.Participant
	for i := 0; i < 3; i++ {
		parts = append(parts, txn.NewParticipant(c.Hosts[i],
			mica.Config{Buckets: 1 << 12, Items: 1 << 13, SlotSize: 128}))
	}
	cfg := objstore.Config{Keys: 3000, ValueSize: 40, ReadSet: 3, WriteSet: 1}
	if err := objstore.Load(parts, cfg); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		n := p.Store.Len()
		if n < 700 {
			t.Fatalf("unbalanced shard: %d keys", n)
		}
		total += n
	}
	if total != 3000 {
		t.Fatalf("loaded %d keys", total)
	}

	g := objstore.NewGen(cfg, 1)
	for i := 0; i < 100; i++ {
		tx := g.Next()
		if len(tx.Reads) != 3 || len(tx.Writes) != 1 {
			t.Fatalf("txn shape = (%d,%d)", len(tx.Reads), len(tx.Writes))
		}
		seen := map[string]bool{}
		for _, k := range append(append([][]byte{}, tx.Reads...), tx.Writes...) {
			if seen[string(k)] {
				t.Fatal("duplicate key in one txn")
			}
			seen[string(k)] = true
		}
		newVals := tx.Apply(nil, [][]byte{make([]byte, 40)})
		if len(newVals) != 1 || len(newVals[0]) != 40 {
			t.Fatal("Apply produced wrong write values")
		}
	}
}

func TestReadOnlyShape(t *testing.T) {
	g := objstore.NewGen(objstore.Config{Keys: 100, ValueSize: 8, ReadSet: 4, WriteSet: 0}, 2)
	tx := g.Next()
	if len(tx.Reads) != 4 || len(tx.Writes) != 0 || tx.Apply != nil {
		t.Fatalf("read-only txn shape wrong: %d/%d", len(tx.Reads), len(tx.Writes))
	}
}
