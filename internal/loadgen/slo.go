package loadgen

import (
	"fmt"

	"scalerpc/internal/stats"
)

// SLOTarget is one latency objective: the q-quantile of request latency
// (measured from intended arrival time) must not exceed LimitUs.
type SLOTarget struct {
	Q       float64 `json:"q"`        // e.g. 0.99
	LimitUs float64 `json:"limit_us"` // e.g. 100
}

// SLO is a tenant's service-level objective: any number of quantile
// targets plus a completion floor. The zero SLO has no targets and always
// passes.
type SLO struct {
	Targets []SLOTarget `json:"targets,omitempty"`
	// MinCompletion is the minimum fraction of in-window offered requests
	// that must complete within the drain deadline (abandoned requests are
	// latency-unbounded, so a sustainable system completes essentially all
	// of them). 0 means 0.999 whenever Targets is non-empty.
	MinCompletion float64 `json:"min_completion,omitempty"`
}

// P99 is shorthand for the common single-target SLO "p99 ≤ limitUs".
func P99(limitUs float64) SLO {
	return SLO{Targets: []SLOTarget{{Q: 0.99, LimitUs: limitUs}}}
}

// Defined reports whether the SLO constrains anything.
func (s SLO) Defined() bool { return len(s.Targets) > 0 || s.MinCompletion > 0 }

// Evaluate checks the SLO against a tenant's measured latency histogram
// and completion counts, returning pass/fail and a human-readable reason
// per violated target.
func (s SLO) Evaluate(lat *stats.Histogram, offered, completed uint64) (bool, []string) {
	var fails []string
	minC := s.MinCompletion
	if minC == 0 && len(s.Targets) > 0 {
		minC = 0.999
	}
	if minC > 0 && offered > 0 {
		frac := float64(completed) / float64(offered)
		if frac < minC {
			fails = append(fails, fmt.Sprintf("completion %.4f < %.4f", frac, minC))
		}
	}
	for _, tg := range s.Targets {
		gotUs := float64(lat.Quantile(tg.Q)) / 1e3
		if gotUs > tg.LimitUs {
			fails = append(fails, fmt.Sprintf("p%g %.1fus > %.1fus", tg.Q*100, gotUs, tg.LimitUs))
		}
	}
	return len(fails) == 0, fails
}

// SLOWindow evaluates an SLO over consecutive virtual-time windows instead
// of cumulative totals: each Advance call snapshots the live histogram and
// counters, evaluates the SLO on the delta since the previous snapshot, and
// rolls the snapshot forward. A transient violation therefore fails only
// the windows it occurred in and clears once behaviour recovers — the
// property an online admission controller needs, and one the cumulative
// Evaluate cannot provide (a polluted histogram stays polluted).
type SLOWindow struct {
	SLO SLO

	prev          *stats.Histogram
	prevOffered   uint64
	prevCompleted uint64
}

// Advance closes the current window against the live cumulative histogram
// and counters, returning whether the window passed, the violated targets,
// and the number of completions observed inside the window (callers
// typically skip decisions on windows with too few samples).
func (w *SLOWindow) Advance(lat *stats.Histogram, offered, completed uint64) (pass bool, fails []string, n uint64) {
	delta := lat.DeltaSince(w.prev)
	dOffered := offered - w.prevOffered
	dCompleted := completed - w.prevCompleted
	w.prev = lat.Clone()
	w.prevOffered = offered
	w.prevCompleted = completed
	pass, fails = w.SLO.Evaluate(delta, dOffered, dCompleted)
	return pass, fails, dCompleted
}
