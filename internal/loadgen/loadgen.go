// Package loadgen is the open-loop load-generation and SLO layer: a
// deterministic, virtual-time workload generator that drives any transport
// implementing rpccore.Conn and answers the question the closed-loop
// figure benches cannot — what offered load can a server *sustain* while
// meeting a latency SLO.
//
// The pieces, mirroring how real load-testing harnesses are built:
//
//   - Arrival processes (arrival.go): requests arrive at *intended* times
//     drawn from a Poisson or fixed-rate process, optionally shaped by a
//     repeating phase schedule (bursts, ramps, quiet periods). Arrivals
//     are independent of completions — the definition of open loop.
//
//   - Multi-tenant mixes (this file): the offered load splits across
//     tenants by explicit share or by Zipf popularity rank; each tenant
//     has its own key-popularity skew, request-size distribution, and SLO.
//
//   - Coordinated-omission-free accounting (runner.go): every request's
//     latency is measured from its intended arrival time, not from when
//     the transport finally accepted it. When the transport falls behind,
//     requests queue in a per-client backlog and the queueing delay lands
//     in the latency distribution instead of silently vanishing — the
//     mistake closed-loop harnesses make under overload.
//
//   - SLO evaluation (slo.go): per-tenant quantile limits plus a
//     completion-fraction floor, evaluated from exact-ish interpolated
//     histogram quantiles.
//
//   - Knee finding (knee.go): a binary search over offered rate for the
//     maximum load that still meets every tenant's SLO — the "sustainable
//     throughput" a capacity planner actually wants.
//
// Everything runs in sim virtual time from seeded stats RNGs: the same
// (Workload, seed, cluster config) replays byte-identically, reports
// included.
package loadgen

import (
	"fmt"

	"scalerpc/internal/rpccore"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
)

// SizeKind selects a request-size distribution shape.
type SizeKind uint8

// Request-size distribution kinds.
const (
	// SizeFixed issues requests of exactly Min bytes.
	SizeFixed SizeKind = iota
	// SizeUniform draws uniformly from [Min, Max].
	SizeUniform
	// SizeLogNormal draws exp(N(Mu, Sigma)) clamped to [Min, Max] — the
	// heavy-tailed shape real RPC size traces show.
	SizeLogNormal
)

// SizeDist describes one tenant's request-size distribution in bytes.
// The zero value means fixed 32-byte requests.
type SizeDist struct {
	Kind SizeKind `json:"kind"`
	Min  int      `json:"min,omitempty"`
	Max  int      `json:"max,omitempty"`
	// Mu/Sigma parameterize SizeLogNormal in log space.
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
}

// FixedSize is the SizeDist issuing exactly n-byte requests.
func FixedSize(n int) SizeDist { return SizeDist{Kind: SizeFixed, Min: n} }

// Sample draws one request size.
func (d SizeDist) Sample(rng *stats.RNG) int {
	min := d.Min
	if min <= 0 {
		min = 32
	}
	switch d.Kind {
	case SizeUniform:
		if d.Max <= min {
			return min
		}
		return min + rng.Intn(d.Max-min+1)
	case SizeLogNormal:
		v := int(rng.LogNormal(d.Mu, d.Sigma))
		if v < min {
			v = min
		}
		if d.Max > 0 && v > d.Max {
			v = d.Max
		}
		return v
	default:
		return min
	}
}

// TenantSpec describes one tenant of the workload.
type TenantSpec struct {
	// Name labels the tenant in telemetry scopes and reports.
	Name string `json:"name"`
	// Share is the tenant's fraction of the total offered rate. Shares
	// are normalized across tenants; when every tenant leaves Share 0,
	// shares follow Zipf popularity rank (Workload.TenantSkew).
	Share float64 `json:"share,omitempty"`
	// Keys is the tenant's key-space size; each request samples a key by
	// Zipf(KeySkew) popularity and embeds it in the payload header. 0
	// disables key sampling.
	Keys uint64 `json:"keys,omitempty"`
	// KeySkew is the tenant's key-popularity Zipf theta.
	KeySkew float64 `json:"key_skew,omitempty"`
	// Size is the tenant's request-size distribution.
	Size SizeDist `json:"size"`
	// SLO is the tenant's latency/completion objective (zero = no SLO).
	SLO SLO `json:"slo"`
}

// ArrivalKind selects the arrival process.
type ArrivalKind uint8

// Arrival processes.
const (
	// ArrivalPoisson draws exponential inter-arrival gaps (memoryless open
	// traffic, the realistic default).
	ArrivalPoisson ArrivalKind = iota
	// ArrivalUniform spaces arrivals exactly 1/rate apart (deterministic
	// paced load, useful for debugging and worst-case phase alignment).
	ArrivalUniform
)

// Phase is one segment of a repeating rate schedule: for Dur of virtual
// time the offered rate is scaled by Mult (0 silences arrivals entirely —
// an off period). An empty schedule means a constant multiplier of 1.
type Phase struct {
	Dur  sim.Duration `json:"dur_ns"`
	Mult float64      `json:"mult"`
}

// Workload is a complete open-loop workload description.
type Workload struct {
	// Name labels the workload in reports.
	Name string `json:"name"`
	// OfferedRate is the total intended arrival rate across all tenants
	// and clients, in requests per second of virtual time.
	OfferedRate float64 `json:"offered_rate"`
	// Arrival selects the arrival process.
	Arrival ArrivalKind `json:"arrival"`
	// Phases optionally shapes the rate over time; the schedule repeats.
	Phases []Phase `json:"phases,omitempty"`
	// Tenants is the tenant mix. Empty means one default tenant.
	Tenants []TenantSpec `json:"tenants,omitempty"`
	// TenantSkew is the Zipf theta used to derive tenant shares when no
	// tenant sets an explicit Share (rank = position in Tenants).
	TenantSkew float64 `json:"tenant_skew,omitempty"`
	// Handler is the RPC handler id requests invoke.
	Handler uint8 `json:"handler"`
	// Warmup precedes the measurement window; arrivals flow but are not
	// measured.
	Warmup sim.Duration `json:"warmup_ns"`
	// Duration is the measurement window. Arrivals stop at Warmup+Duration.
	Duration sim.Duration `json:"duration_ns"`
	// Drain bounds how long the runner waits for in-flight requests after
	// arrivals stop; in-window requests still unanswered at the deadline
	// count as abandoned. 0 means a generous default.
	Drain sim.Duration `json:"drain_ns,omitempty"`
	// Call configures per-call reliability — deadline, retry/backoff,
	// hedging — applied by wrapping every client connection in an
	// rpccore.Caller. The zero value keeps raw transport semantics
	// (calls wait forever, nothing is re-sent).
	Call rpccore.CallOpts `json:"call"`
	// Seed drives every RNG in the workload.
	Seed uint64 `json:"seed"`
	// PollInterval bounds client sleep while waiting for responses or the
	// next arrival. 0 means a sane default.
	PollInterval sim.Duration `json:"poll_interval_ns,omitempty"`
}

// withDefaults returns w with zero fields resolved.
func (w Workload) withDefaults() Workload {
	if len(w.Tenants) == 0 {
		w.Tenants = []TenantSpec{{Name: "default"}}
	}
	for i := range w.Tenants {
		if w.Tenants[i].Name == "" {
			w.Tenants[i].Name = fmt.Sprintf("t%d", i)
		}
	}
	if w.Drain <= 0 {
		w.Drain = 2 * sim.Millisecond
	}
	if w.PollInterval <= 0 {
		w.PollInterval = 5 * sim.Microsecond
	}
	if w.Seed == 0 {
		w.Seed = 1
	}
	return w
}

// shares returns the normalized per-tenant shares of the offered rate.
func (w Workload) shares() []float64 {
	out := make([]float64, len(w.Tenants))
	sum := 0.0
	for i, ts := range w.Tenants {
		out[i] = ts.Share
		sum += ts.Share
	}
	if sum <= 0 {
		return stats.ZipfShares(len(w.Tenants), w.TenantSkew)
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
