package loadgen

import (
	"math"

	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
)

// arrivalStream generates one client's intended arrival times: an open-loop
// sequence driven only by virtual time and the client's own RNG, never by
// completions. Rates are per-client (the workload's offered rate divided
// down by tenant share and client count); the phase schedule scales the
// instantaneous rate and repeats for the lifetime of the stream.
type arrivalStream struct {
	kind   ArrivalKind
	rng    *stats.RNG
	rate   float64 // base arrivals per second
	phases []Phase
	cycle  sim.Duration // total schedule length, 0 when unshaped
	next   sim.Time     // next intended arrival
}

func newArrivalStream(kind ArrivalKind, rng *stats.RNG, rate float64, phases []Phase, start sim.Time) *arrivalStream {
	s := &arrivalStream{kind: kind, rng: rng, rate: rate, phases: phases}
	for _, p := range phases {
		s.cycle += p.Dur
	}
	if s.cycle <= 0 {
		s.phases = nil
	}
	// Desynchronize clients: the first arrival lands a random fraction of
	// one mean gap after start, so a thousand same-rate clients do not all
	// fire at the same instant.
	s.next = start + s.gapAt(start, s.rng.Float64())
	return s
}

// multAt returns the phase multiplier in effect at time t.
func (s *arrivalStream) multAt(t sim.Time) float64 {
	if s.phases == nil {
		return 1
	}
	off := t % s.cycle
	for _, p := range s.phases {
		if off < p.Dur {
			return p.Mult
		}
		off -= p.Dur
	}
	return 1
}

// silenceEnd returns the next time ≥ t with a positive multiplier, walking
// phase boundaries; if the whole schedule is silent, t + one full cycle
// (the caller's horizon check then terminates the stream).
func (s *arrivalStream) silenceEnd(t sim.Time) sim.Time {
	start := t
	for hops := 0; hops <= len(s.phases); hops++ {
		if s.multAt(t) > 0 {
			return t
		}
		off := t % s.cycle
		for _, p := range s.phases {
			if off < p.Dur {
				t += p.Dur - off
				break
			}
			off -= p.Dur
		}
	}
	return start + s.cycle
}

// gapAt draws the inter-arrival gap following an arrival at time t, from a
// single uniform draw u (one RNG draw per arrival regardless of process
// kind, so same-seed streams stay aligned across arrival-kind comparisons).
func (s *arrivalStream) gapAt(t sim.Time, u float64) sim.Duration {
	mult := s.multAt(t)
	if mult <= 0 {
		// Silent phase: jump to the end of the silence, then one gap at
		// the resumed rate.
		resume := s.silenceEnd(t)
		return (resume - t) + s.gapFor(s.multAt(resume), u)
	}
	return s.gapFor(mult, u)
}

func (s *arrivalStream) gapFor(mult, u float64) sim.Duration {
	if s.rate <= 0 || mult <= 0 {
		return sim.Second // effectively idle
	}
	meanNs := 1e9 / (s.rate * mult)
	var g sim.Duration
	switch s.kind {
	case ArrivalUniform:
		g = sim.Duration(meanNs)
	default: // ArrivalPoisson: invert the exponential CDF
		g = sim.Duration(-meanNs * math.Log(1-u))
	}
	if g < 1 {
		g = 1
	}
	return g
}

// peek returns the next intended arrival time without consuming it.
func (s *arrivalStream) peek() sim.Time { return s.next }

// pop consumes the current arrival and schedules the following one.
func (s *arrivalStream) pop() sim.Time {
	at := s.next
	s.next = at + s.gapAt(at, s.rng.Float64())
	return at
}
