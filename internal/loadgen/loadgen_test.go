package loadgen_test

import (
	"bytes"
	"math"
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/loadgen"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
	"scalerpc/internal/telemetry"
)

// fakeConn is a deterministic single-server queue standing in for a real
// transport: each accepted request occupies the server for svc of virtual
// time, responses appear in arrival order. With open-loop input this is an
// M/D/1 (Poisson) or D/D/1 (uniform) queue with known capacity 1/svc —
// exactly the behaviour the coordinated-omission accounting and the knee
// finder are specified against.
type fakeConn struct {
	env       *sim.Env
	sig       *sim.Signal
	svc       sim.Duration
	window    int
	inflight  int
	busyUntil sim.Time
	ready     []rpccore.Response
}

func newFakeConn(env *sim.Env, sig *sim.Signal, svc sim.Duration, window int) *fakeConn {
	return &fakeConn{env: env, sig: sig, svc: svc, window: window}
}

func (f *fakeConn) TrySend(t *host.Thread, handler uint8, payload []byte, reqID uint64) bool {
	if f.inflight >= f.window {
		return false
	}
	f.inflight++
	start := f.env.Now()
	if f.busyUntil > start {
		start = f.busyUntil
	}
	done := start + f.svc
	f.busyUntil = done
	f.env.At(done-f.env.Now(), func() {
		f.ready = append(f.ready, rpccore.Response{ReqID: reqID})
		f.sig.Broadcast()
	})
	return true
}

func (f *fakeConn) Poll(t *host.Thread, fn func(rpccore.Response)) int {
	n := len(f.ready)
	for _, r := range f.ready {
		f.inflight--
		fn(r)
	}
	f.ready = f.ready[:0]
	return n
}

func (f *fakeConn) Outstanding() int { return f.inflight }
func (f *fakeConn) SlotCount() int   { return f.window }

// runFake executes w over n fake-conn clients with the given service time
// and returns the report plus the registry dump.
func runFake(t *testing.T, w loadgen.Workload, n int, svc sim.Duration, window int) (*loadgen.Report, []byte) {
	t.Helper()
	c := cluster.New(cluster.Default(1))
	defer c.Close()
	clients := make([]loadgen.Client, n)
	nt := len(w.Tenants)
	if nt == 0 {
		nt = 1
	}
	for i := range clients {
		sig := sim.NewSignal(c.Env)
		clients[i] = loadgen.Client{
			Host:   c.Hosts[0],
			Conn:   newFakeConn(c.Env, sig, svc, window),
			Sig:    sig,
			Tenant: i % nt,
		}
	}
	r := loadgen.NewRunner(w, clients, c.Telemetry.UniqueScope("loadgen"))
	r.Start(c.Env)
	c.Env.RunUntil(r.DrainDeadline() + sim.Microsecond)
	return r.Report(), c.Telemetry.JSON()
}

func baseWorkload() loadgen.Workload {
	return loadgen.Workload{
		Name:        "unit",
		OfferedRate: 200_000,
		Warmup:      200 * sim.Microsecond,
		Duration:    2 * sim.Millisecond,
		Seed:        7,
		Handler:     1,
	}
}

func TestSameSeedRunsAreByteIdentical(t *testing.T) {
	w := baseWorkload()
	w.Tenants = []loadgen.TenantSpec{
		{Name: "a", Keys: 1024, KeySkew: 0.9, Size: loadgen.SizeDist{Kind: loadgen.SizeLogNormal, Min: 16, Max: 1024, Mu: 5, Sigma: 1}},
		{Name: "b", Size: loadgen.FixedSize(64)},
	}
	r1, m1 := runFake(t, w, 4, 3*sim.Microsecond, 8)
	r2, m2 := runFake(t, w, 4, 3*sim.Microsecond, 8)
	if !bytes.Equal(r1.JSON(), r2.JSON()) {
		t.Fatal("same-seed reports differ")
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("same-seed telemetry dumps differ")
	}
	if r1.Completed == 0 {
		t.Fatal("no requests completed")
	}
	w.Seed = 8
	r3, _ := runFake(t, w, 4, 3*sim.Microsecond, 8)
	if bytes.Equal(r1.JSON(), r3.JSON()) {
		t.Fatal("different seeds produced identical reports")
	}
}

func TestOpenLoopOffersIndependentOfService(t *testing.T) {
	// The offered count must depend only on the arrival process — a slow
	// server does not throttle an open-loop generator (it just builds
	// backlog), unlike a closed loop.
	w := baseWorkload()
	w.Arrival = loadgen.ArrivalUniform
	fast, _ := runFake(t, w, 1, 1*sim.Microsecond, 8)
	slow, _ := runFake(t, w, 1, 40*sim.Microsecond, 8)
	if fast.Offered != slow.Offered {
		t.Fatalf("offered load changed with service time: %d vs %d", fast.Offered, slow.Offered)
	}
	want := w.OfferedRate * float64(w.Duration) / 1e9
	if math.Abs(float64(fast.Offered)-want) > 0.02*want+2 {
		t.Fatalf("offered = %d, want ~%.0f", fast.Offered, want)
	}
}

func TestCoordinatedOmissionFreeLatency(t *testing.T) {
	// Uniform arrivals every 5µs into a 15µs/request server: the queue
	// grows by one request per 7.5µs, so waiting time — measured from
	// *intended* arrival — must dwarf the service time by the end of the
	// window. A send-time-based (coordinated-omission) measurement would
	// report ~service time.
	w := baseWorkload()
	w.Arrival = loadgen.ArrivalUniform
	w.OfferedRate = 200_000 // 5µs gap
	w.Duration = 1 * sim.Millisecond
	w.Warmup = 0
	w.Drain = 20 * sim.Millisecond // let the queue fully drain
	rep, _ := runFake(t, w, 1, 15*sim.Microsecond, 4)
	tr := rep.Tenants[0]
	if tr.Abandoned != 0 {
		t.Fatalf("drain window too short: %d abandoned", tr.Abandoned)
	}
	if tr.P50Us < 10*15 {
		t.Fatalf("median latency %.1fus does not include queueing (svc 15us)", tr.P50Us)
	}
	if tr.QueueP99Us < 100 {
		t.Fatalf("queue delay p99 %.1fus too small for a saturated open loop", tr.QueueP99Us)
	}
	if tr.BacklogPeak < 20 {
		t.Fatalf("backlog peak %d, want the queue to have built up", tr.BacklogPeak)
	}
	// The same offered load against a fast server shows only service time.
	fastRep, _ := runFake(t, w, 1, 1*sim.Microsecond, 4)
	if p := fastRep.Tenants[0].P99Us; p > 10 {
		t.Fatalf("unloaded p99 %.1fus, want ~service time", p)
	}
}

func TestPhaseScheduleShapesArrivals(t *testing.T) {
	// Rate r with schedule [off, 2x] must offer ~the same total as a flat
	// run (average multiplier 1) but squeezed into half the time.
	w := baseWorkload()
	w.Arrival = loadgen.ArrivalUniform
	w.Warmup = 0
	w.Duration = 2 * sim.Millisecond
	w.Phases = []loadgen.Phase{
		{Dur: 250 * sim.Microsecond, Mult: 0},
		{Dur: 250 * sim.Microsecond, Mult: 2},
	}
	shaped, _ := runFake(t, w, 1, 1*sim.Microsecond, 8)
	w.Phases = nil
	flat, _ := runFake(t, w, 1, 1*sim.Microsecond, 8)
	ratio := float64(shaped.Offered) / float64(flat.Offered)
	if math.Abs(ratio-1) > 0.1 {
		t.Fatalf("burst schedule offered %.2fx the flat load, want ~1x", ratio)
	}
}

func TestTenantSharesFollowZipfAndExplicit(t *testing.T) {
	w := baseWorkload()
	w.Duration = 4 * sim.Millisecond
	w.TenantSkew = 0.99
	w.Tenants = []loadgen.TenantSpec{{Name: "t0"}, {Name: "t1"}, {Name: "t2"}}
	rep, _ := runFake(t, w, 3, 1*sim.Microsecond, 8)
	shares := stats.ZipfShares(3, 0.99)
	for i, tr := range rep.Tenants {
		got := float64(tr.Offered) / float64(rep.Offered)
		if math.Abs(got-shares[i]) > 0.05 {
			t.Fatalf("tenant %d offered share %.3f, want ~%.3f", i, got, shares[i])
		}
	}

	w.Tenants = []loadgen.TenantSpec{{Name: "big", Share: 3}, {Name: "small", Share: 1}}
	rep, _ = runFake(t, w, 2, 1*sim.Microsecond, 8)
	got := float64(rep.Tenants[0].Offered) / float64(rep.Offered)
	if math.Abs(got-0.75) > 0.05 {
		t.Fatalf("explicit share: big tenant got %.3f, want ~0.75", got)
	}
}

func TestSLOEvaluation(t *testing.T) {
	h := stats.NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Record(int64(10 * sim.Microsecond))
	}
	pass, fails := loadgen.P99(50).Evaluate(h, 1000, 1000)
	if !pass || len(fails) != 0 {
		t.Fatalf("10us latency must pass p99<=50us: %v", fails)
	}
	pass, fails = loadgen.P99(5).Evaluate(h, 1000, 1000)
	if pass || len(fails) == 0 {
		t.Fatal("10us latency must fail p99<=5us")
	}
	// Completion floor: 1% abandoned fails the default 99.9% floor.
	pass, _ = loadgen.P99(50).Evaluate(h, 1000, 990)
	if pass {
		t.Fatal("99% completion must fail the default floor")
	}
	var none loadgen.SLO
	if pass, _ = none.Evaluate(h, 1000, 0); !pass {
		t.Fatal("zero SLO must always pass")
	}
}

func TestKneeFinderLocatesCapacity(t *testing.T) {
	// 2 clients × (1 req / 10µs) = 200k req/s of true capacity. The knee
	// must land in the stable region just below it.
	const svc = 10 * sim.Microsecond
	trial := func(rate float64) *loadgen.Report {
		w := baseWorkload()
		w.OfferedRate = rate
		w.Duration = 4 * sim.Millisecond
		w.Drain = 1 * sim.Millisecond
		w.Tenants = []loadgen.TenantSpec{{Name: "main", SLO: loadgen.P99(120)}}
		rep, _ := runFake(t, w, 2, svc, 8)
		return rep
	}
	res := loadgen.FindKnee(loadgen.KneeOptions{Lo: 20_000, Hi: 800_000, Iters: 8}, trial)
	if res.Saturated {
		t.Fatal("bracket saturated; Hi should overload the fake server")
	}
	if res.SustainableRate < 100_000 || res.SustainableRate > 230_000 {
		t.Fatalf("knee at %.0f req/s, want near the 200k capacity", res.SustainableRate)
	}
	if len(res.Trials) < 4 {
		t.Fatalf("only %d trials recorded", len(res.Trials))
	}
	// Stability: the same search replays identically.
	res2 := loadgen.FindKnee(loadgen.KneeOptions{Lo: 20_000, Hi: 800_000, Iters: 8}, trial)
	if res.SustainableRate != res2.SustainableRate {
		t.Fatalf("knee not stable: %.0f vs %.0f", res.SustainableRate, res2.SustainableRate)
	}
}

func TestAbandonedCountedAtDrainDeadline(t *testing.T) {
	// A server far below the offered rate with a short drain must abandon
	// measured requests and fail any SLO with a completion floor.
	w := baseWorkload()
	w.OfferedRate = 500_000
	w.Duration = 1 * sim.Millisecond
	w.Warmup = 0
	w.Drain = 100 * sim.Microsecond
	w.Tenants = []loadgen.TenantSpec{{Name: "over", SLO: loadgen.P99(1000)}}
	rep, _ := runFake(t, w, 1, 50*sim.Microsecond, 2)
	if rep.Abandoned == 0 {
		t.Fatal("overloaded run with short drain must abandon requests")
	}
	if rep.Pass {
		t.Fatal("abandonment must fail the SLO completion floor")
	}
	if rep.Offered != rep.Completed+rep.Abandoned+rep.Errors {
		t.Fatalf("accounting leak: offered %d != completed %d + abandoned %d + errors %d",
			rep.Offered, rep.Completed, rep.Abandoned, rep.Errors)
	}
}

func TestTelemetryScopesRegistered(t *testing.T) {
	c := cluster.New(cluster.Default(1))
	defer c.Close()
	sig := sim.NewSignal(c.Env)
	w := baseWorkload()
	w.Duration = 200 * sim.Microsecond
	w.Tenants = []loadgen.TenantSpec{{Name: "solo"}}
	r := loadgen.NewRunner(w, []loadgen.Client{{
		Host: c.Hosts[0], Conn: newFakeConn(c.Env, sig, sim.Microsecond, 4), Sig: sig,
	}}, c.Telemetry.UniqueScope("loadgen"))
	r.Start(c.Env)
	c.Env.RunUntil(r.DrainDeadline() + sim.Microsecond)
	for _, name := range []string{
		"loadgen.tenant.solo.offered", "loadgen.tenant.solo.completed",
		"loadgen.tenant.solo.abandoned", "loadgen.tenant.solo.errors",
		"loadgen.tenant.solo.backlog", "loadgen.tenant.solo.lat_ns",
		"loadgen.tenant.solo.queue_ns",
	} {
		if _, ok := c.Telemetry.Value(name); !ok {
			t.Fatalf("metric %q not registered", name)
		}
	}
	if v, _ := c.Telemetry.Value("loadgen.tenant.solo.completed"); v == 0 {
		t.Fatal("completed counter stayed zero")
	}
	// Detached scope works too.
	r2 := loadgen.NewRunner(w, nil, telemetry.Scope{})
	_ = r2.Report()
}
