package loadgen

import "encoding/json"

// TenantReport is one tenant's measured outcome over the window.
type TenantReport struct {
	Name    string  `json:"name"`
	Share   float64 `json:"share"`
	Clients int     `json:"clients"`

	Offered   uint64 `json:"offered"`
	Completed uint64 `json:"completed"`
	Abandoned uint64 `json:"abandoned"`
	Errors    uint64 `json:"errors"`
	// Timeouts is the subset of Errors that were Caller deadline expiries
	// (only nonzero when the workload sets Call.Timeout).
	Timeouts uint64 `json:"timeouts,omitempty"`

	AchievedMops float64 `json:"achieved_mops"`

	// Latency (from intended arrival) quantiles, in microseconds.
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`

	// QueueP99Us is the p99 of send delay (intended arrival → transport
	// accept): how long requests sat in the open-loop backlog.
	QueueP99Us float64 `json:"queue_p99_us"`
	// BacklogPeak is the largest backlog observed across the tenant's
	// clients at any instant.
	BacklogPeak uint64 `json:"backlog_peak"`

	// LatHist is the full log2 latency histogram (bucket bit → count),
	// so reports embed the distribution, not just its quantiles.
	LatHist map[string]uint64 `json:"lat_hist,omitempty"`

	SLO      SLO      `json:"slo"`
	SLOPass  bool     `json:"slo_pass"`
	SLOFails []string `json:"slo_fails,omitempty"`
}

// Report is the outcome of one open-loop run.
type Report struct {
	Name        string  `json:"name"`
	OfferedRate float64 `json:"offered_rate"`
	DurationNs  int64   `json:"duration_ns"`

	Offered   uint64 `json:"offered"`
	Completed uint64 `json:"completed"`
	Abandoned uint64 `json:"abandoned"`
	Errors    uint64 `json:"errors"`
	Timeouts  uint64 `json:"timeouts,omitempty"`

	OfferedMops  float64 `json:"offered_mops"`
	AchievedMops float64 `json:"achieved_mops"`

	// Pass aggregates every tenant's SLO verdict.
	Pass bool `json:"pass"`

	Tenants []TenantReport `json:"tenants"`
}

// JSON renders the report with indentation. Output is deterministic: all
// fields are ordered structs and LatHist keys are zero-padded bit labels,
// which encoding/json emits sorted.
func (r *Report) JSON() []byte {
	b, err := json.MarshalIndent(r, "", " ")
	if err != nil { // no unmarshalable types in Report
		panic(err)
	}
	return b
}
