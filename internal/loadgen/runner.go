package loadgen

import (
	"encoding/binary"
	"fmt"

	"scalerpc/internal/host"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
	"scalerpc/internal/telemetry"
)

// maxReqSize caps sampled request sizes: every transport in the repository
// uses 4 KB message blocks, and request + response (with wire header and
// trailer) must both fit one block.
const maxReqSize = 2048

// Client binds one open-loop load client to a transport endpoint: the host
// it runs on, the connection it drives, the activity signal the transport
// broadcasts on, and the tenant (index into Workload.Tenants) it belongs
// to. The transport choice — and transport-specific placement such as
// ScaleRPC reserved zones — stays with the caller.
type Client struct {
	Host   *host.Host
	Conn   rpccore.Conn
	Sig    *sim.Signal
	Tenant int
}

// tenantState aggregates one tenant's accounting. The simulator is
// single-threaded, so clients update it directly.
type tenantState struct {
	spec    TenantSpec
	share   float64
	clients int

	offered   uint64 // intended arrivals inside the measurement window
	completed uint64
	abandoned uint64
	errors    uint64
	timeouts  uint64 // subset of errors: Caller deadline expiries

	lat    *stats.Histogram // completion - intended arrival (CO-free)
	qdelay *stats.Histogram // transport accept - intended arrival

	telLat *telemetry.Histogram
	telQ   *telemetry.Histogram

	backlog     float64 // current queued-but-unsent requests, all clients
	backlogPeak uint64
}

// pendingReq is one generated request waiting in a client's backlog.
type pendingReq struct {
	intended sim.Time
	size     int
	key      uint64
}

// Runner executes one open-loop workload over a set of clients.
type Runner struct {
	w       Workload
	clients []Client
	tenants []*tenantState

	horizon sim.Time // arrivals stop here (Warmup + Duration)
	endAt   sim.Time // drain deadline
	started bool
	running int // live client procs

	// Done is woken when the last client finishes (drained or deadline).
	Done *sim.Signal
}

// NewRunner builds a runner for w over the given clients. scope names the
// runner's telemetry (pass a detached Scope for none): per-tenant counters,
// gauges and log2 latency histograms register under
// <scope>.tenant.<name>.*. Client tenant indices must be valid.
func NewRunner(w Workload, clients []Client, scope telemetry.Scope) *Runner {
	w = w.withDefaults()
	shares := w.shares()
	r := &Runner{
		w:       w,
		clients: clients,
		horizon: w.Warmup + w.Duration,
	}
	r.endAt = r.horizon + w.Drain
	for i, ts := range w.Tenants {
		t := &tenantState{
			spec:   ts,
			share:  shares[i],
			lat:    stats.NewHistogram(),
			qdelay: stats.NewHistogram(),
		}
		sc := scope.Scope("tenant", ts.Name)
		sc.CounterVar("offered", &t.offered)
		sc.CounterVar("completed", &t.completed)
		sc.CounterVar("abandoned", &t.abandoned)
		sc.CounterVar("errors", &t.errors)
		sc.CounterVar("timeouts", &t.timeouts)
		sc.GaugeVar("backlog", &t.backlog)
		t.telLat = sc.Histogram("lat_ns")
		t.telQ = sc.Histogram("queue_ns")
		r.tenants = append(r.tenants, t)
	}
	for _, c := range clients {
		if c.Tenant < 0 || c.Tenant >= len(r.tenants) {
			panic(fmt.Sprintf("loadgen: client tenant %d out of range", c.Tenant))
		}
		r.tenants[c.Tenant].clients++
	}
	return r
}

// Start spawns one process per client on its host. Call once; then run the
// simulation past the drain deadline (Horizon()+Drain) and collect Report.
func (r *Runner) Start(env *sim.Env) {
	if r.started {
		panic("loadgen: Runner started twice")
	}
	r.started = true
	r.Done = sim.NewSignal(env)
	rng := stats.NewRNG(r.w.Seed)
	wrap := r.w.Call != (rpccore.CallOpts{})
	for i := range r.clients {
		c := r.clients[i]
		if wrap {
			// Per-call deadlines/retries/hedging: wrap the transport in a
			// Caller sharing the host registry's reliability counters.
			c.Conn = rpccore.NewCaller(c.Conn, r.w.Call,
				rpccore.SharedRel(c.Host.Tel.Registry()))
		}
		ts := r.tenants[c.Tenant]
		perClient := 0.0
		if ts.clients > 0 {
			perClient = r.w.OfferedRate * ts.share / float64(ts.clients)
		}
		crng := rng.Split()
		cr := &clientRun{
			r:       r,
			c:       c,
			ts:      ts,
			rng:     crng,
			arr:     newArrivalStream(r.w.Arrival, crng.Split(), perClient, r.w.Phases, 0),
			pending: make(map[uint64]pendingReq),
			payload: make([]byte, maxReqSize),
		}
		if ts.spec.Keys > 0 {
			cr.keys = stats.NewZipf(crng.Split(), ts.spec.Keys, ts.spec.KeySkew)
		}
		r.running++
		c.Host.Spawn(fmt.Sprintf("load%d", i), cr.run)
	}
}

// TenantSample exposes a tenant's live cumulative latency histogram and
// offered/completed counts so an online controller can evaluate sliding
// SLO windows (via stats.Histogram.DeltaSince) while the workload runs.
// The returned histogram is the live object: snapshot it, don't mutate it.
func (r *Runner) TenantSample(name string) (lat *stats.Histogram, offered, completed uint64, ok bool) {
	for _, ts := range r.tenants {
		if ts.spec.Name == name {
			return ts.lat, ts.offered, ts.completed, true
		}
	}
	return nil, 0, 0, false
}

// Horizon returns the virtual time at which arrivals stop.
func (r *Runner) Horizon() sim.Time { return r.horizon }

// DrainDeadline returns the virtual time by which every client has exited.
func (r *Runner) DrainDeadline() sim.Time { return r.endAt }

// clientRun is one client's loop state.
type clientRun struct {
	r       *Runner
	c       Client
	ts      *tenantState
	rng     *stats.RNG
	arr     *arrivalStream
	keys    *stats.Zipf
	backlog []pendingReq
	pending map[uint64]pendingReq // reqID → request (intended time et al.)
	seq     uint64
	payload []byte
}

// inWindow reports whether an intended arrival time is measured.
func (cr *clientRun) inWindow(at sim.Time) bool {
	return at >= cr.r.w.Warmup && at < cr.r.horizon
}

// run is the open-loop client loop: generate due arrivals into the
// backlog, poll completions, push the backlog into the transport, sleep
// until the next arrival or activity. Latency is completion minus
// *intended* arrival, so time spent in the backlog (transport saturated,
// ScaleRPC context-switch wait, RC retransmission) is part of every
// recorded sample — no coordinated omission.
func (cr *clientRun) run(t *host.Thread) {
	r := cr.r
	for {
		now := t.P.Now()

		// Generate every arrival due by now (still capped at the horizon).
		for cr.arr.peek() <= now && cr.arr.peek() < r.horizon {
			at := cr.arr.pop()
			req := pendingReq{intended: at, size: cr.ts.spec.Size.Sample(cr.rng)}
			if req.size > maxReqSize {
				req.size = maxReqSize
			}
			if cr.keys != nil {
				req.key = cr.keys.Next()
			}
			if cr.inWindow(at) {
				cr.ts.offered++
			}
			cr.backlog = append(cr.backlog, req)
			cr.ts.backlog++
			if b := uint64(cr.ts.backlog); b > cr.ts.backlogPeak {
				cr.ts.backlogPeak = b
			}
		}

		// Collect responses; the state machine under Poll also advances
		// ScaleRPC's IDLE/WARMUP/PROCESS cycle.
		cr.c.Conn.Poll(t, func(resp rpccore.Response) {
			req, ok := cr.pending[resp.ReqID]
			if !ok {
				return
			}
			delete(cr.pending, resp.ReqID)
			if !cr.inWindow(req.intended) {
				return
			}
			if resp.Err {
				cr.ts.errors++
				if resp.TimedOut {
					cr.ts.timeouts++
				}
				return
			}
			cr.ts.completed++
			l := int64(t.P.Now() - req.intended)
			cr.ts.lat.Record(l)
			cr.ts.telLat.Observe(uint64(l))
		})

		// Push the backlog; TrySend refuses when the window is full or the
		// transport is mid-context-switch, and the queueing delay keeps
		// accruing against the intended arrival time.
		for len(cr.backlog) > 0 {
			req := cr.backlog[0]
			if !cr.c.Conn.TrySend(t, r.w.Handler, cr.buildPayload(req), cr.seq) {
				break
			}
			cr.pending[cr.seq] = req
			cr.seq++
			cr.backlog = cr.backlog[1:]
			cr.ts.backlog--
			if cr.inWindow(req.intended) {
				q := int64(t.P.Now() - req.intended)
				cr.ts.qdelay.Record(q)
				cr.ts.telQ.Observe(uint64(q))
			}
		}

		// Exit when arrivals are done and either everything drained or the
		// drain deadline passed; whatever measured work remains unanswered
		// is abandoned (and fails any completion-floor SLO).
		if now >= r.horizon {
			drained := len(cr.backlog) == 0 && len(cr.pending) == 0
			if drained || now >= r.endAt {
				for _, req := range cr.backlog {
					if cr.inWindow(req.intended) {
						cr.ts.abandoned++
					}
				}
				cr.ts.backlog -= float64(len(cr.backlog))
				for _, req := range cr.pending {
					if cr.inWindow(req.intended) {
						cr.ts.abandoned++
					}
				}
				break
			}
		}

		// Sleep until the next intended arrival, the drain deadline, or
		// transport activity — whichever is first.
		wake := r.endAt
		if next := cr.arr.peek(); next < r.horizon && next < wake {
			wake = next
		}
		d := wake - now
		if len(cr.backlog) > 0 || len(cr.pending) > 0 {
			// Work in flight: poll at least every PollInterval even if the
			// signal stays quiet (e.g. completions recorded before we
			// registered interest).
			if d > r.w.PollInterval {
				d = r.w.PollInterval
			}
		}
		if d <= 0 {
			d = 1
		}
		// WaitSignal absorbs the poll scan's deferred core charge into the
		// park — one scheduler wake-up per idle cycle instead of two.
		t.WaitSignal(cr.c.Sig, d)
	}
	// Settle any residue from the final poll so the client exits with its
	// core time fully charged.
	t.FlushWork()
	r.running--
	if r.running == 0 {
		r.Done.Broadcast()
	}
}

// buildPayload fills the client's scratch buffer for one request: the key
// in the first 8 bytes (when key sampling is on), the rest zero.
func (cr *clientRun) buildPayload(req pendingReq) []byte {
	size := req.size
	if size < 8 {
		size = 8
	}
	p := cr.payload[:size]
	binary.LittleEndian.PutUint64(p, req.key)
	return p
}

// Report assembles the run's outcome. Call after the simulation has run to
// the drain deadline (all client procs exited).
func (r *Runner) Report() *Report {
	rep := &Report{
		Name:        r.w.Name,
		OfferedRate: r.w.OfferedRate,
		DurationNs:  int64(r.w.Duration),
		Pass:        true,
	}
	for _, ts := range r.tenants {
		tr := TenantReport{
			Name:         ts.spec.Name,
			Share:        ts.share,
			Clients:      ts.clients,
			Offered:      ts.offered,
			Completed:    ts.completed,
			Abandoned:    ts.abandoned,
			Errors:       ts.errors,
			Timeouts:     ts.timeouts,
			AchievedMops: mops(ts.completed, r.w.Duration),
			MeanUs:       ts.lat.Mean() / 1e3,
			P50Us:        float64(ts.lat.Quantile(0.5)) / 1e3,
			P99Us:        float64(ts.lat.Quantile(0.99)) / 1e3,
			P999Us:       float64(ts.lat.Quantile(0.999)) / 1e3,
			MaxUs:        float64(ts.lat.Max()) / 1e3,
			QueueP99Us:   float64(ts.qdelay.Quantile(0.99)) / 1e3,
			BacklogPeak:  ts.backlogPeak,
			SLO:          ts.spec.SLO,
		}
		tr.LatHist = histBuckets(ts.telLat)
		tr.SLOPass, tr.SLOFails = ts.spec.SLO.Evaluate(ts.lat, ts.offered, ts.completed)
		if !tr.SLOPass {
			rep.Pass = false
		}
		rep.Offered += ts.offered
		rep.Completed += ts.completed
		rep.Abandoned += ts.abandoned
		rep.Errors += ts.errors
		rep.Timeouts += ts.timeouts
		rep.Tenants = append(rep.Tenants, tr)
	}
	rep.OfferedMops = mops(rep.Offered, r.w.Duration)
	rep.AchievedMops = mops(rep.Completed, r.w.Duration)
	return rep
}

// histBuckets flattens a telemetry log2 histogram into bit-label → count,
// with zero-padded labels so JSON key order equals bucket order.
func histBuckets(h *telemetry.Histogram) map[string]uint64 {
	if h.Count() == 0 {
		return nil
	}
	out := make(map[string]uint64)
	for bit := 0; bit < 65; bit++ {
		if n := h.Bucket(bit); n > 0 {
			out[fmt.Sprintf("bit%02d", bit)] = n
		}
	}
	return out
}

// mops converts a count over a window into millions per second.
func mops(n uint64, window sim.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(n) / (float64(window) / 1e9) / 1e6
}
