package loadgen

import (
	"testing"

	"scalerpc/internal/stats"
)

// TestSLOWindowTransientViolation drives three windows through one live
// cumulative histogram: clean traffic, a transient latency excursion, and
// recovery. The windowed evaluator must fail exactly the middle window,
// while the cumulative evaluator stays failed forever once polluted —
// the difference that makes SLOWindow usable as an online control signal.
func TestSLOWindowTransientViolation(t *testing.T) {
	slo := P99(50) // p99 ≤ 50µs
	win := &SLOWindow{SLO: slo}
	lat := stats.NewHistogram()
	var offered, completed uint64

	record := func(n int, v int64) {
		for i := 0; i < n; i++ {
			lat.Record(v)
			offered++
			completed++
		}
	}

	// Window 1: 1000 fast samples at 10µs.
	record(1000, 10_000)
	pass, fails, n := win.Advance(lat, offered, completed)
	if !pass || n != 1000 {
		t.Fatalf("window 1: want pass with 1000 samples, got pass=%v n=%d fails=%v", pass, n, fails)
	}

	// Window 2: transient violation — half the samples at 400µs.
	record(500, 10_000)
	record(500, 400_000)
	pass, fails, n = win.Advance(lat, offered, completed)
	if pass || n != 1000 {
		t.Fatalf("window 2: want fail with 1000 samples, got pass=%v n=%d", pass, n)
	}
	if len(fails) == 0 {
		t.Fatal("window 2: expected a violated-target reason")
	}

	// Window 3: recovered.
	record(1000, 10_000)
	pass, _, n = win.Advance(lat, offered, completed)
	if !pass || n != 1000 {
		t.Fatalf("window 3: want pass after recovery, got pass=%v n=%d", pass, n)
	}

	// The cumulative evaluator is still polluted by window 2's excursion:
	// 500/3000 samples at 400µs keeps the cumulative p99 far above 50µs.
	if cumPass, _ := slo.Evaluate(lat, offered, completed); cumPass {
		t.Fatal("cumulative Evaluate unexpectedly cleared — windowing would be pointless")
	}
}

// TestSLOWindowCompletionFloor checks the windowed completion-fraction
// check: a window where offered ran ahead of completions fails, and the
// next balanced window clears.
func TestSLOWindowCompletionFloor(t *testing.T) {
	win := &SLOWindow{SLO: SLO{MinCompletion: 0.99}}
	lat := stats.NewHistogram()
	var offered, completed uint64

	offered, completed = 1000, 1000
	for i := 0; i < 1000; i++ {
		lat.Record(10_000)
	}
	if pass, _, _ := win.Advance(lat, offered, completed); !pass {
		t.Fatal("balanced window should pass")
	}

	offered += 1000
	completed += 900 // 10% abandoned this window
	if pass, _, _ := win.Advance(lat, offered, completed); pass {
		t.Fatal("90% completion window should fail the 0.99 floor")
	}

	offered += 1000
	completed += 1000
	if pass, _, _ := win.Advance(lat, offered, completed); !pass {
		t.Fatal("recovered window should pass")
	}
}

// TestHistogramDeltaSince pins the snapshot/delta contract on the stats
// histogram itself: counts, total, mean and quantiles reflect only the
// post-snapshot samples.
func TestHistogramDeltaSince(t *testing.T) {
	h := stats.NewHistogram()
	for i := 0; i < 100; i++ {
		h.Record(5_000)
	}
	snap := h.Clone()
	for i := 0; i < 100; i++ {
		h.Record(80_000)
	}
	d := h.DeltaSince(snap)
	if d.Count() != 100 {
		t.Fatalf("delta count = %d, want 100", d.Count())
	}
	if q := d.Quantile(0.5); q < 60_000 {
		t.Fatalf("delta median %d should reflect only the slow samples", q)
	}
	if min := d.Min(); min < 5_000 {
		t.Fatalf("delta min %d below any recorded sample", min)
	}
	// Delta against a nil snapshot is the whole histogram.
	full := h.DeltaSince(nil)
	if full.Count() != h.Count() {
		t.Fatalf("nil-snapshot delta count = %d, want %d", full.Count(), h.Count())
	}
	// Empty delta.
	empty := h.DeltaSince(h.Clone())
	if empty.Count() != 0 || empty.Quantile(0.99) != 0 {
		t.Fatalf("empty delta not empty: n=%d", empty.Count())
	}
}
