package loadgen

// The knee finder answers the capacity-planning question directly: binary
// search over offered rate for the highest load whose open-loop run still
// meets every tenant's SLO. Below the knee an open-loop system is stable
// (backlog bounded, latency near service time); above it the backlog — and
// therefore CO-free latency — grows without bound, so the pass/fail
// predicate is sharply monotone in rate and bisection converges fast.

// KneeTrial records one probe of the search.
type KneeTrial struct {
	Rate float64 `json:"rate"`
	Pass bool    `json:"pass"`
	// P99Us and AchievedMops summarize the trial (first tenant with an
	// SLO, or the aggregate when none declares one).
	P99Us        float64 `json:"p99_us"`
	AchievedMops float64 `json:"achieved_mops"`
}

// KneeOptions bounds the search.
type KneeOptions struct {
	// Lo and Hi bracket the search in requests/second. Lo should pass and
	// Hi should fail for a meaningful knee; the result notes when the
	// bracket saturates instead.
	Lo, Hi float64
	// Iters is the number of bisection steps (default 7: bracket ratio
	// resolved to <1%· 2^-7).
	Iters int
}

// KneeResult is the outcome of a knee search.
type KneeResult struct {
	// SustainableRate is the highest probed rate that met the SLO (0 when
	// even Lo fails).
	SustainableRate float64 `json:"sustainable_rate"`
	// SustainableMops is the achieved throughput at that rate.
	SustainableMops float64 `json:"sustainable_mops"`
	// Saturated reports that Hi itself passed — the true knee lies above
	// the bracket.
	Saturated bool        `json:"saturated"`
	Trials    []KneeTrial `json:"trials"`
}

// TrialFunc runs one open-loop trial at the given offered rate and returns
// its report. Each call must build a fresh, identically-seeded system so
// trials are independent and the whole search is deterministic.
type TrialFunc func(rate float64) *Report

// FindKnee bisects [opt.Lo, opt.Hi] for the maximum sustainable rate.
func FindKnee(opt KneeOptions, trial TrialFunc) KneeResult {
	if opt.Iters <= 0 {
		opt.Iters = 7
	}
	res := KneeResult{}
	probe := func(rate float64) (bool, KneeTrial) {
		rep := trial(rate)
		kt := KneeTrial{Rate: rate, Pass: rep.Pass, AchievedMops: rep.AchievedMops}
		for _, tr := range rep.Tenants {
			if tr.SLO.Defined() {
				kt.P99Us = tr.P99Us
				break
			}
		}
		if kt.P99Us == 0 && len(rep.Tenants) > 0 {
			kt.P99Us = rep.Tenants[0].P99Us
		}
		res.Trials = append(res.Trials, kt)
		if rep.Pass && rate > res.SustainableRate {
			res.SustainableRate = rate
			res.SustainableMops = rep.AchievedMops
		}
		return rep.Pass, kt
	}

	loPass, _ := probe(opt.Lo)
	if !loPass {
		return res // knee below the bracket
	}
	hiPass, _ := probe(opt.Hi)
	if hiPass {
		res.Saturated = true
		return res // knee above the bracket
	}
	lo, hi := opt.Lo, opt.Hi
	for i := 0; i < opt.Iters; i++ {
		mid := (lo + hi) / 2
		if pass, _ := probe(mid); pass {
			lo = mid
		} else {
			hi = mid
		}
	}
	return res
}
