package rds

import "encoding/binary"

// Layout fixes the geometry of the server's registered region. Both the
// one-sided clients and the server-side RPC handlers interpret the same
// bytes, so the layout is the wire contract of the whole subsystem.
//
// Region map (all offsets from the region base):
//
//	[0, HT)                      hash table: Buckets × BucketBytes
//	[HT, HT+64)                  queue tail ticket (8 bytes used)
//	[HT+64, HT+128)              queue head ticket (8 bytes used)
//	[HT+128, ...)                queue ring: QueueCap × SlotBytes
//
// One bucket — the version word sits at the HIGHEST address so a writer
// can publish slot bytes and the new version in one WRITE whose final
// (torn-delayed) byte is the version's never-changing MSB; under the
// simulator's increasing-address torn-write model the data and the
// version parity therefore always commit in the same instant:
//
//	[i*(8+ValSize), ...)         slot i: 8-byte key (0 = empty) + value
//	[SlotsPerBucket*(8+ValSize)) version word — even: stable, odd: locked
//
// One queue slot — the commit word is LAST so that the simulator's
// increasing-address torn-write model exposes data before the sequence
// number, never the reverse:
//
//	[0, 4)                       element length
//	[4, 4+ValSize)               element bytes (zero-padded)
//	[4+ValSize, 12+ValSize)      sequence number (Vyukov ring protocol)
type Layout struct {
	Buckets        int // power of two
	SlotsPerBucket int
	ValSize        int // fixed value size in bytes
	QueueCap       int // power of two ring slots
}

// DefaultLayout is a small table suitable for tests and demos.
func DefaultLayout() Layout {
	return Layout{Buckets: 256, SlotsPerBucket: 4, ValSize: 64, QueueCap: 1024}
}

// check panics on an unusable geometry.
func (l Layout) check() {
	if l.Buckets <= 0 || l.Buckets&(l.Buckets-1) != 0 {
		panic("rds: Buckets must be a power of two")
	}
	if l.QueueCap <= 0 || l.QueueCap&(l.QueueCap-1) != 0 {
		panic("rds: QueueCap must be a power of two")
	}
	if l.SlotsPerBucket <= 0 || l.ValSize <= 0 {
		panic("rds: SlotsPerBucket and ValSize must be positive")
	}
}

// BucketBytes is the size of one bucket (version word + slots).
func (l Layout) BucketBytes() int { return 8 + l.SlotsPerBucket*(8+l.ValSize) }

// SlotBytes is the size of one queue ring slot.
func (l Layout) SlotBytes() int { return 12 + l.ValSize }

// htBytes is the hash-table span.
func (l Layout) htBytes() int { return l.Buckets * l.BucketBytes() }

// TailOff/HeadOff/RingOff locate the queue control words and ring.
func (l Layout) TailOff() int { return l.htBytes() }
func (l Layout) HeadOff() int { return l.htBytes() + 64 }
func (l Layout) RingOff() int { return l.htBytes() + 128 }

// SlotOff locates ring slot i.
func (l Layout) SlotOff(i int) int { return l.RingOff() + i*l.SlotBytes() }

// SeqOff locates the commit word inside ring slot i.
func (l Layout) SeqOff(i int) int { return l.SlotOff(i) + 4 + l.ValSize }

// BucketOff locates bucket b.
func (l Layout) BucketOff(b int) int { return b * l.BucketBytes() }

// KeyOff/ValOff/VerOff locate slot s and the version word inside a
// bucket (relative to the bucket).
func (l Layout) KeyOff(s int) int { return s * (8 + l.ValSize) }
func (l Layout) ValOff(s int) int { return l.KeyOff(s) + 8 }
func (l Layout) VerOff() int      { return l.SlotsPerBucket * (8 + l.ValSize) }

// Bytes is the total registered-region size.
func (l Layout) Bytes() int { return l.RingOff() + l.QueueCap*l.SlotBytes() }

// BucketOf maps a key to its bucket with a splitmix64-style finalizer, so
// adjacent keys scatter across buckets.
func (l Layout) BucketOf(key uint64) int {
	return int(mix64(key) & uint64(l.Buckets-1))
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// initQueue stamps the ring's initial sequence numbers (slot i starts at
// seq i, per the Vyukov protocol) into a freshly zeroed region image.
func (l Layout) initQueue(buf []byte) {
	for i := 0; i < l.QueueCap; i++ {
		binary.LittleEndian.PutUint64(buf[l.SeqOff(i):], uint64(i))
	}
}
