package rds

import (
	"encoding/binary"
	"fmt"

	"scalerpc/internal/host"
	"scalerpc/internal/scalerpc"
)

// RPCClient is the two-sided backend: each op is one ScaleRPC call whose
// handler runs the protocol server-side. One round trip per op regardless
// of op complexity — the crossover advantage RPC holds for multi-round-trip
// or large-payload operations — at the price of server CPU and a scheduler
// slot per op.
type RPCClient struct {
	d    *Deployment
	id   int
	conn *scalerpc.Conn
	req  []byte
}

// Kind implements Client.
func (c *RPCClient) Kind() Kind { return KindRPC }

// Conn exposes the underlying ScaleRPC connection (tests drain it).
func (c *RPCClient) Conn() *scalerpc.Conn { return c.conn }

// call runs one synchronous op and validates the status byte.
func (c *RPCClient) call(t *host.Thread, h uint8, req []byte) ([]byte, error) {
	resp, err := c.conn.SyncCall(t, h, req, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRemote, err)
	}
	if len(resp) < 1 {
		return nil, fmt.Errorf("%w: empty response", ErrRemote)
	}
	return resp, nil
}

// Get fetches a value via the server-side handler.
func (c *RPCClient) Get(t *host.Thread, key uint64, val []byte) error {
	binary.LittleEndian.PutUint64(c.req[:8], key)
	resp, err := c.call(t, HandlerGet, c.req[:8])
	if err != nil {
		return err
	}
	c.d.Stats.Ops++
	c.d.Stats.RPCOps++
	switch resp[0] {
	case stOK:
		copy(val, resp[1:])
		return nil
	case stNotFound:
		return ErrNotFound
	}
	return fmt.Errorf("%w: status %d", ErrRemote, resp[0])
}

// Put stores a value via the server-side handler.
func (c *RPCClient) Put(t *host.Thread, key uint64, val []byte) error {
	lay := c.d.Srv.Lay
	if len(val) > lay.ValSize {
		val = val[:lay.ValSize]
	}
	binary.LittleEndian.PutUint64(c.req[:8], key)
	n := 8 + copy(c.req[8:8+lay.ValSize], val)
	resp, err := c.call(t, HandlerPut, c.req[:n])
	if err != nil {
		return err
	}
	c.d.Stats.Ops++
	c.d.Stats.RPCOps++
	switch resp[0] {
	case stOK:
		return nil
	case stFull:
		return ErrFull
	}
	return fmt.Errorf("%w: status %d", ErrRemote, resp[0])
}

// Enqueue appends an element, retrying while the ring is full so the
// blocking semantics match the one-sided backend.
func (c *RPCClient) Enqueue(t *host.Thread, data []byte) error {
	if len(data) > c.d.Srv.Lay.ValSize {
		return fmt.Errorf("%w: element %d > %d", ErrRemote, len(data), c.d.Srv.Lay.ValSize)
	}
	for attempt := 0; ; attempt++ {
		resp, err := c.call(t, HandlerEnq, data)
		if err != nil {
			return err
		}
		switch resp[0] {
		case stOK:
			c.d.Stats.Ops++
			c.d.Stats.RPCOps++
			return nil
		case stFull:
			t.P.Sleep(backoff(attempt, c.id))
			continue
		}
		return fmt.Errorf("%w: status %d", ErrRemote, resp[0])
	}
}

// Dequeue removes the oldest element, polling while the ring is empty so
// the blocking semantics match the one-sided backend.
func (c *RPCClient) Dequeue(t *host.Thread, buf []byte) (int, error) {
	for attempt := 0; ; attempt++ {
		resp, err := c.call(t, HandlerDeq, nil)
		if err != nil {
			return 0, err
		}
		switch resp[0] {
		case stOK:
			if len(resp) < 5 {
				return 0, fmt.Errorf("%w: short dequeue response", ErrRemote)
			}
			n := int(binary.LittleEndian.Uint32(resp[1:]))
			if n > len(resp)-5 {
				n = len(resp) - 5
			}
			c.d.Stats.Ops++
			c.d.Stats.RPCOps++
			return copy(buf, resp[5:5+n]), nil
		case stEmpty:
			t.P.Sleep(backoff(attempt, c.id))
			continue
		}
		return 0, fmt.Errorf("%w: status %d", ErrRemote, resp[0])
	}
}
