package rds

import (
	"encoding/binary"
	"fmt"

	"scalerpc/internal/host"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/sim"
)

// LoadConn adapts an rds Client to rpccore.Conn so internal/loadgen's
// open-loop runner can drive hash-table workloads through any backend.
//
// The runner embeds the sampled key in the payload's first 8 bytes (see
// loadgen.buildPayload); LoadConn shifts it by one (layout key 0 means
// "empty slot") and deterministically classifies each request as a Get or
// a Put from a hash of (key, reqID) against PutFraction. Because the rds
// op API is blocking, each LoadConn runs a private worker thread that
// executes queued ops in order; TrySend only enqueues, Poll only drains,
// so the open-loop client thread never blocks and backlog delay lands in
// the coordinated-omission-free latency accounting where it belongs.
type LoadConn struct {
	cl  Client
	sig *sim.Signal // shared with the loadgen client (its activity signal)
	ask *sim.Signal // wakes the worker

	putFraction float64
	window      int

	queue    []loadOp
	done     []rpccore.Response
	inflight int
	val      []byte
}

// loadOp is one queued request.
type loadOp struct {
	reqID uint64
	key   uint64
	put   bool
	size  int
}

// NewLoadConn builds the adapter and spawns its worker on host ch. sig
// must be the same signal the loadgen.Client is configured with; window
// bounds queued+executing ops (the rpccore.Conn slot count).
func (d *Deployment) NewLoadConn(ch *host.Host, cl Client, sig *sim.Signal, putFraction float64, window int) *LoadConn {
	if window <= 0 {
		window = 4
	}
	lc := &LoadConn{
		cl: cl, sig: sig, ask: sim.NewSignal(d.C.Env),
		putFraction: putFraction, window: window,
		val: make([]byte, d.Srv.Lay.ValSize),
	}
	ch.Spawn(fmt.Sprintf("rds-load%d", d.clients), lc.worker)
	return lc
}

// TrySend implements rpccore.Conn: classify and enqueue.
func (lc *LoadConn) TrySend(t *host.Thread, handler uint8, payload []byte, reqID uint64) bool {
	if lc.inflight >= lc.window {
		return false
	}
	if len(payload) < 8 {
		return false
	}
	key := binary.LittleEndian.Uint64(payload) + 1
	// Deterministic op mix: the same (key, reqID) always classifies the
	// same way, independent of backend, so every arm of an experiment
	// issues the identical op sequence.
	h := mix64(key ^ mix64(reqID+0x9e3779b97f4a7c15))
	put := float64(h>>11)/float64(1<<53) < lc.putFraction
	lc.queue = append(lc.queue, loadOp{reqID: reqID, key: key, put: put, size: len(payload)})
	lc.inflight++
	lc.ask.Broadcast()
	return true
}

// Poll implements rpccore.Conn: drain completed ops.
func (lc *LoadConn) Poll(t *host.Thread, fn func(rpccore.Response)) int {
	n := len(lc.done)
	for _, r := range lc.done {
		fn(r)
	}
	lc.done = lc.done[:0]
	return n
}

// Outstanding implements rpccore.Conn.
func (lc *LoadConn) Outstanding() int { return lc.inflight }

// SlotCount implements rpccore.Conn.
func (lc *LoadConn) SlotCount() int { return lc.window }

// worker executes queued ops in order on its own thread.
func (lc *LoadConn) worker(t *host.Thread) {
	for {
		for len(lc.queue) == 0 {
			t.WaitSignal(lc.ask, 50*sim.Microsecond)
		}
		op := lc.queue[0]
		lc.queue = lc.queue[1:]
		var err error
		if op.put {
			// Value bytes derive from the key so verification is possible;
			// length rides the sampled request size, capped at ValSize.
			n := op.size
			if n > len(lc.val) {
				n = len(lc.val)
			}
			binary.LittleEndian.PutUint64(lc.val, mix64(op.key))
			err = lc.cl.Put(t, op.key, lc.val[:n])
		} else {
			err = lc.cl.Get(t, op.key, lc.val)
			if err == ErrNotFound {
				err = nil // a miss is a completed lookup, not a failure
			}
		}
		lc.inflight--
		lc.done = append(lc.done, rpccore.Response{ReqID: op.reqID, Err: err != nil})
		lc.sig.Broadcast()
	}
}
