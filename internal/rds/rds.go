// Package rds provides remote data structures — a fixed-bucket hash table
// and an MPMC queue — hosted in one server's registered memory and reachable
// through three interchangeable backends:
//
//   - one-sided: clients operate directly on server memory with READ,
//     WRITE, CAS and FetchAdd work requests. Buckets carry a seqlock-style
//     version word (even = stable, odd = locked) so torn reads are detected
//     and retried; the queue is a Vyukov-style ring whose head/tail tickets
//     are claimed with FetchAdd. The server CPU never touches these ops.
//   - rpc: the same operations shipped as ScaleRPC handlers and executed
//     server-side against the same memory layout. One round trip per op,
//     but each op consumes server CPU and a scheduler slot.
//   - adaptive: a per-op hybrid that starts from a payload-size prior and
//     then steers by virtual-time EWMAs of observed latency and CAS-retry
//     rate — falling back from one-sided to RPC under contention and
//     returning under quiescence (Brock et al., "RDMA vs. RPC for
//     Implementing Distributed Data Structures").
//
// All three backends interoperate on the same live structure: the RPC
// handlers honor the version words and ring sequence numbers, so a
// one-sided CAS and a server-side handler never corrupt a bucket between
// them.
package rds

import (
	"errors"

	"scalerpc/internal/host"
	"scalerpc/internal/sim"
)

// Errors returned by data-structure operations.
var (
	ErrNotFound  = errors.New("rds: key not found")
	ErrFull      = errors.New("rds: bucket full")
	ErrQueueFull = errors.New("rds: queue full")
	ErrContended = errors.New("rds: too many retries")
	ErrRemote    = errors.New("rds: remote/transport error")
)

// HashClient is the hash-table face of a backend. Values are fixed-size
// (Layout.ValSize); Get copies the value into val and Put stores exactly
// ValSize bytes (shorter inputs are zero-padded).
type HashClient interface {
	Get(t *host.Thread, key uint64, val []byte) error
	Put(t *host.Thread, key uint64, val []byte) error
}

// QueueClient is the MPMC-queue face of a backend. Enqueue blocks while
// the ring is full; Dequeue blocks until an element is available. Both are
// linearizable across backends: a ticket claimed (by FetchAdd or by the
// server handler) is always eventually consumed exactly once.
type QueueClient interface {
	Enqueue(t *host.Thread, data []byte) error
	Dequeue(t *host.Thread, buf []byte) (int, error)
}

// Client is one backend endpoint bound to a client host.
type Client interface {
	HashClient
	QueueClient
	// Kind reports which backend this client is.
	Kind() Kind
}

// Kind names a backend.
type Kind int

// Backends.
const (
	KindOneSided Kind = iota
	KindRPC
	KindAdaptive
)

func (k Kind) String() string {
	switch k {
	case KindOneSided:
		return "onesided"
	case KindRPC:
		return "rpc"
	case KindAdaptive:
		return "adaptive"
	}
	return "?"
}

// Stats aggregates backend-level counters for one deployment. The
// simulator is cooperatively scheduled, so clients update the shared
// struct directly; Deploy registers every field in the cluster's
// telemetry registry under the "rds" scope.
type Stats struct {
	Ops         uint64 // completed data-structure operations
	OneSidedOps uint64 // ops executed on the one-sided path
	RPCOps      uint64 // ops executed on the RPC path
	CASRetries  uint64 // one-sided lock CAS attempts that lost the race
	TornRetries uint64 // one-sided bucket reads discarded (odd version)
	QueueSpins  uint64 // one-sided ring re-reads while a slot was in flight
	Switches    uint64 // adaptive preferred-backend flips
	Probes      uint64 // adaptive deterministic probes of the non-preferred backend
}

// Default op pacing for one-sided retry backoff.
const (
	backoffBase = 200 * sim.Nanosecond
	backoffCap  = 6 // max left-shift of backoffBase
	maxAttempts = 4096
)

// backoff returns the deterministic retry delay for the given attempt,
// salted by the client id so colliding clients do not stay in lockstep.
func backoff(attempt, clientID int) sim.Duration {
	sh := attempt
	if sh > backoffCap {
		sh = backoffCap
	}
	return backoffBase<<sh + sim.Duration(clientID%7)*23*sim.Nanosecond
}
