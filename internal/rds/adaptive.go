package rds

import (
	"math"

	"scalerpc/internal/host"
	"scalerpc/internal/sim"
)

// Policy tunes the adaptive backend's selection machinery. The zero value
// is replaced by DefaultPolicy.
type Policy struct {
	// Window is the virtual-time EWMA horizon: a sample's weight decays to
	// 1/e after Window of inactivity, so stale observations fade even when
	// an op kind goes quiet.
	Window sim.Duration
	// ProbeEvery issues every Nth op of a kind on the non-preferred
	// backend, keeping its EWMA warm so the policy can switch back under
	// quiescence. 0 disables probing.
	ProbeEvery int
	// Hysteresis is the fractional latency advantage the non-preferred
	// backend must show before the policy flips, damping oscillation.
	Hysteresis float64
	// CASTrip is the CAS+torn retry rate (retries per op, EWMA) above
	// which writes trip straight to RPC regardless of latency — the
	// one-sided path is burning round trips losing lock races.
	CASTrip float64
	// LargeVal is the value size at which the cold-start prior picks RPC:
	// a one-sided get READs the whole bucket (SlotsPerBucket × value), so
	// large values amplify one-sided bytes-per-op well past the RPC
	// response size.
	LargeVal int
	// NsPerByte prices an op's wire footprint on the shared server link
	// (default: 56 Gbps line rate). The score charges it scaled by the
	// observed queueing ratio (EWMA latency over the latency floor): on an
	// idle link bytes are nearly free and raw latency decides, but once a
	// path's latency inflates over its own floor the link is the
	// bottleneck and the byte-heavy backend loses even when per-op
	// latencies look alike — a latency-greedy policy alone cannot see that
	// a 4 KB bucket READ costs the fleet four 1 KB RPC responses.
	NsPerByte float64
	// BWTripNs and QueueTrip form the bandwidth analog of CASTrip: an op
	// whose one-sided wire footprint exceeds its RPC footprint by more
	// than BWTripNs (at line rate — i.e. only byte-amplifying large-value
	// ops qualify) trips to RPC while the one-sided latency EWMA sits more
	// than QueueTrip× above its observed floor. Per-op latency cannot
	// price the shared-link externality — each client's 4 KB READ queues
	// everyone — so under visible congestion the byte-heavy path yields.
	BWTripNs  float64
	QueueTrip float64
}

// DefaultPolicy returns the tuning used by the benchmarks.
func DefaultPolicy() Policy {
	return Policy{
		Window:     200 * sim.Microsecond,
		ProbeEvery: 32,
		Hysteresis: 0.10,
		CASTrip:    1.5,
		LargeVal:   512,
		NsPerByte:  1.0 / 7.0, // 56 Gbps
		BWTripNs:   250,
		QueueTrip:  3,
	}
}

// withDefaults fills zero fields.
func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.Window <= 0 {
		p.Window = d.Window
	}
	if p.ProbeEvery == 0 {
		p.ProbeEvery = d.ProbeEvery
	}
	if p.Hysteresis <= 0 {
		p.Hysteresis = d.Hysteresis
	}
	if p.CASTrip <= 0 {
		p.CASTrip = d.CASTrip
	}
	if p.LargeVal <= 0 {
		p.LargeVal = d.LargeVal
	}
	if p.NsPerByte <= 0 {
		p.NsPerByte = d.NsPerByte
	}
	if p.BWTripNs <= 0 {
		p.BWTripNs = d.BWTripNs
	}
	if p.QueueTrip <= 0 {
		p.QueueTrip = d.QueueTrip
	}
	return p
}

// ewma is a virtual-time exponentially weighted moving average: the blend
// weight of each new sample grows with the gap since the previous one
// (1 - e^(-dt/Window)), floored so back-to-back samples still move it.
type ewma struct {
	v    float64
	last sim.Time
	set  bool
}

func (e *ewma) observe(now sim.Time, x float64, window sim.Duration) {
	if !e.set {
		e.v, e.last, e.set = x, now, true
		return
	}
	a := 1 - math.Exp(-float64(now-e.last)/float64(window))
	if a < 0.05 {
		a = 0.05
	}
	e.v += a * (x - e.v)
	e.last = now
}

// opKind indexes the per-operation adaptive state.
type opKind int

const (
	opGet opKind = iota
	opPut
	opEnq
	opDeq
	opKinds
)

// Adaptive is the hybrid backend: each op goes to the currently preferred
// backend for its kind, steered by virtual-time EWMAs of observed latency
// and of the one-sided retry rate, with deterministic probing of the
// non-preferred backend so the choice can revert under quiescence.
type Adaptive struct {
	d   *Deployment
	one *OneSided
	rpc *RPCClient
	pol Policy

	n    [opKinds]uint64 // ops issued per kind (drives the probe cadence)
	pref [opKinds]Kind   // current preferred backend per kind
	lat  [opKinds][2]ewma
	// latMin is the best single latency seen per (kind, backend): the
	// uncontended floor the queueing ratio is measured against.
	latMin [opKinds][2]float64
	// byteNs prices each (kind, backend)'s wire footprint at line rate.
	byteNs [opKinds][2]float64
	// retries tracks one-sided lock-acquisition futility for writes:
	// CAS losses and torn reads per op.
	retries ewma
}

// Kind implements Client.
func (c *Adaptive) Kind() Kind { return KindAdaptive }

// Preferred reports the current preferred backend for an op kind
// (tests and the bench report inspect it).
func (c *Adaptive) Preferred(k opKind) Kind { return c.pref[k] }

// PreferredGet/PreferredPut are exported views for reports.
func (c *Adaptive) PreferredGet() Kind { return c.pref[opGet] }
func (c *Adaptive) PreferredPut() Kind { return c.pref[opPut] }

func newAdaptive(d *Deployment, one *OneSided, rpc *RPCClient, pol Policy) *Adaptive {
	c := &Adaptive{d: d, one: one, rpc: rpc, pol: pol.withDefaults()}
	// Cold-start prior: large values amplify one-sided bucket READs, so
	// start them on RPC; small ops start one-sided (fewer server cycles).
	prior := KindOneSided
	if d.Srv.Lay.ValSize >= c.pol.LargeVal {
		prior = KindRPC
	}
	for k := range c.pref {
		c.pref[k] = prior
	}
	// Wire bytes each op moves through the server NIC, per backend. The
	// one-sided figures count the dominant transfers (bucket/slot payloads
	// plus the 16-byte atomic exchanges); the RPC figures count request +
	// response.
	lay := d.Srv.Lay
	bkt, slot, val := float64(lay.BucketBytes()), float64(lay.SlotBytes()), float64(lay.ValSize)
	bytes := [opKinds][2]float64{
		opGet: {KindOneSided: bkt, KindRPC: 8 + 1 + val},
		opPut: {KindOneSided: 2*bkt + 16, KindRPC: 8 + val + 1},
		opEnq: {KindOneSided: 16 + 8 + slot, KindRPC: val + 1},
		opDeq: {KindOneSided: 16 + slot + 8, KindRPC: 5 + val},
	}
	for k := range bytes {
		for b := range bytes[k] {
			c.byteNs[k][b] = bytes[k][b] * c.pol.NsPerByte
		}
	}
	return c
}

// score is the comparable cost of a backend for op kind k: the latency
// EWMA plus the op's wire footprint priced at line rate and scaled by the
// observed queueing ratio (see Policy.NsPerByte).
func (c *Adaptive) score(k opKind, b Kind) float64 {
	e := &c.lat[k][b]
	if !e.set {
		return math.MaxFloat64
	}
	q := 1.0
	if m := c.latMin[k][b]; m > 0 && e.v > m {
		q = e.v / m
	}
	return e.v + q*c.byteNs[k][b]
}

// choose picks the backend for the next op of kind k.
func (c *Adaptive) choose(k opKind) Kind {
	c.n[k]++
	pick := c.pref[k]
	// Contention trip: writes abandon one-sided while lock races burn
	// round trips. (Gets keep their latency-driven choice — torn reads
	// surface there as inflated latency.)
	if (k == opPut) && pick == KindOneSided && c.retries.set && c.retries.v > c.pol.CASTrip {
		return KindRPC
	}
	// Bandwidth trip: byte-amplifying ops yield the congested link.
	if pick == KindOneSided && c.byteNs[k][KindOneSided]-c.byteNs[k][KindRPC] > c.pol.BWTripNs {
		if e := &c.lat[k][KindOneSided]; e.set {
			if m := c.latMin[k][KindOneSided]; m > 0 && e.v > c.pol.QueueTrip*m {
				return KindRPC
			}
		}
	}
	if c.pol.ProbeEvery > 0 && c.n[k]%uint64(c.pol.ProbeEvery) == 0 {
		c.d.Stats.Probes++
		if pick == KindOneSided {
			return KindRPC
		}
		return KindOneSided
	}
	return pick
}

// record folds one op's outcome into the EWMAs and re-evaluates the
// preference with hysteresis.
func (c *Adaptive) record(t *host.Thread, k opKind, used Kind, elapsed sim.Duration, osRetries uint64) {
	now := t.P.Now()
	c.lat[k][used].observe(now, float64(elapsed), c.pol.Window)
	if m := c.latMin[k][used]; m == 0 || float64(elapsed) < m {
		c.latMin[k][used] = float64(elapsed)
	}
	if used == KindOneSided {
		c.retries.observe(now, float64(osRetries), c.pol.Window)
	}
	cur, other := c.pref[k], KindOneSided
	if cur == KindOneSided {
		other = KindRPC
	}
	sc, so := c.score(k, cur), c.score(k, other)
	if sc < math.MaxFloat64 && so < sc*(1-c.pol.Hysteresis) {
		c.pref[k] = other
		c.d.Stats.Switches++
	}
}

// probeAttempts bounds one-sided retries during a probe: a probe is an
// experiment, and a contended bucket should cost it a few round trips,
// not a maxAttempts-deep retry storm.
const probeAttempts = 6

// run executes one op on the chosen backend, measuring elapsed virtual
// time and the one-sided retries it cost. A probe onto the one-sided path
// runs with a small retry budget; if it comes back ErrContended the op
// re-runs on the preferred backend so probing never fails user ops.
func (c *Adaptive) run(t *host.Thread, k opKind, fn func(Client) error) error {
	used := c.choose(k)
	offPref := used != c.pref[k]
	var cl Client = c.one
	if used == KindRPC {
		cl = c.rpc
	}
	if used == KindOneSided && offPref {
		c.one.attempts = probeAttempts
	}
	start := t.P.Now()
	r0 := c.d.Stats.CASRetries + c.d.Stats.TornRetries
	err := fn(cl)
	c.one.attempts = 0
	c.record(t, k, used, t.P.Now()-start, c.d.Stats.CASRetries+c.d.Stats.TornRetries-r0)
	if err == ErrContended && offPref && used == KindOneSided {
		start = t.P.Now()
		err = fn(c.rpc)
		c.record(t, k, KindRPC, t.P.Now()-start, 0)
	}
	return err
}

// Get implements HashClient.
func (c *Adaptive) Get(t *host.Thread, key uint64, val []byte) error {
	return c.run(t, opGet, func(cl Client) error { return cl.Get(t, key, val) })
}

// Put implements HashClient.
func (c *Adaptive) Put(t *host.Thread, key uint64, val []byte) error {
	return c.run(t, opPut, func(cl Client) error { return cl.Put(t, key, val) })
}

// Enqueue implements QueueClient.
func (c *Adaptive) Enqueue(t *host.Thread, data []byte) error {
	return c.run(t, opEnq, func(cl Client) error { return cl.Enqueue(t, data) })
}

// Dequeue implements QueueClient.
func (c *Adaptive) Dequeue(t *host.Thread, buf []byte) (int, error) {
	var n int
	err := c.run(t, opDeq, func(cl Client) error {
		var e error
		n, e = cl.Dequeue(t, buf)
		return e
	})
	return n, err
}
