package rds

import (
	"encoding/binary"
	"fmt"

	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/nic"
	"scalerpc/internal/sim"
)

// OneSided is the pure one-sided backend: every operation is a sequence of
// READ/WRITE/CAS/FetchAdd work requests against the server's registered
// region, with no server CPU involvement.
//
// Scratch-region map (client-local, LocalWrite only):
//
//	[0, readSpan)               READ landing area (bucket or ring slot)
//	[readSpan, 2·readSpan)      WRITE staging area
//	[2·readSpan, +8)            8-byte staging word (version publishes)
type OneSided struct {
	d       *Deployment
	id      int // client index, salts retry backoff
	qp      *nic.QP
	cq      *nic.CQ
	scratch *memory.Region

	readSpan int
	wrid     uint64

	// attempts, when nonzero, bounds seqlock/CAS retries instead of
	// maxAttempts. The adaptive backend sets it around probe ops so a
	// probe into a contended bucket costs a handful of round trips, not
	// thousands (ErrContended then falls back to the preferred backend).
	attempts int
}

// maxTries is the retry budget for seqlock reads and CAS loops.
func (c *OneSided) maxTries() int {
	if c.attempts > 0 {
		return c.attempts
	}
	return maxAttempts
}

// Kind implements Client.
func (c *OneSided) Kind() Kind { return KindOneSided }

// span returns the scratch granule: the largest single transfer any op
// performs.
func span(l Layout) int {
	s := l.BucketBytes()
	if sb := l.SlotBytes(); sb > s {
		s = sb
	}
	// Round to 64 so the three areas sit on distinct cache lines.
	return (s + 63) &^ 63
}

// readOff/stageOff/wordOff locate the scratch areas.
func (c *OneSided) readOff() uint64  { return c.scratch.Base }
func (c *OneSided) stageOff() uint64 { return c.scratch.Base + uint64(c.readSpan) }
func (c *OneSided) wordOff() uint64  { return c.scratch.Base + uint64(2*c.readSpan) }

// post issues one signaled work request and blocks until its completion.
func (c *OneSided) post(t *host.Thread, wr nic.SendWR) (nic.CQE, error) {
	c.wrid++
	wr.WRID = c.wrid
	wr.Signaled = true
	if err := t.PostSend(c.qp, wr); err != nil {
		return nic.CQE{}, fmt.Errorf("%w: %v", ErrRemote, err)
	}
	for {
		for _, e := range t.WaitCQ(c.cq, 16, 5*sim.Microsecond) {
			if e.WRID != c.wrid {
				continue // stale completion from an unsignaled pair
			}
			if e.Status != nic.CQOK {
				return e, fmt.Errorf("%w: cqe status %d", ErrRemote, e.Status)
			}
			return e, nil
		}
	}
}

// read READs size bytes at remote offset off into the scratch landing
// area and returns the aliased bytes.
func (c *OneSided) read(t *host.Thread, off, size int) ([]byte, error) {
	_, err := c.post(t, nic.SendWR{
		Op:   nic.OpRead,
		LKey: c.scratch.LKey, LAddr: c.readOff(), Len: size,
		RKey: c.d.Srv.Reg.RKey, RAddr: c.d.Srv.Base() + uint64(off),
	})
	if err != nil {
		return nil, err
	}
	t.ReadMem(c.readOff(), size)
	return c.scratch.Bytes()[:size], nil
}

// cas issues a compare-and-swap on the 8-byte word at remote offset off,
// returning the old value.
func (c *OneSided) cas(t *host.Thread, off int, compare, swap uint64) (uint64, error) {
	e, err := c.post(t, nic.SendWR{
		Op:      nic.OpCompSwap,
		RKey:    c.d.Srv.Reg.RKey,
		RAddr:   c.d.Srv.Base() + uint64(off),
		Compare: compare, Swap: swap,
	})
	return e.AtomicOld, err
}

// fetchAdd atomically adds to the 8-byte word at remote offset off,
// returning the pre-add value (the ticket).
func (c *OneSided) fetchAdd(t *host.Thread, off int, add uint64) (uint64, error) {
	e, err := c.post(t, nic.SendWR{
		Op:    nic.OpFetchAdd,
		RKey:  c.d.Srv.Reg.RKey,
		RAddr: c.d.Srv.Base() + uint64(off),
		Add:   add,
	})
	return e.AtomicOld, err
}

// Get reads the whole bucket in one READ and scans it locally; an odd
// version word means a writer holds the bucket and the read retries. One
// round trip per attempt.
func (c *OneSided) Get(t *host.Thread, key uint64, val []byte) error {
	lay := c.d.Srv.Lay
	boff := lay.BucketOff(lay.BucketOf(key))
	for attempt := 0; attempt < c.maxTries(); attempt++ {
		b, err := c.read(t, boff, lay.BucketBytes())
		if err != nil {
			return err
		}
		if binary.LittleEndian.Uint64(b[lay.VerOff():])&1 != 0 {
			c.d.Stats.TornRetries++
			t.P.Sleep(backoff(attempt, c.id))
			continue
		}
		// The simulator commits a READ's payload at one instant, so an even
		// version word certifies the snapshot.
		for i := 0; i < lay.SlotsPerBucket; i++ {
			if binary.LittleEndian.Uint64(b[lay.KeyOff(i):]) == key {
				c.d.Stats.Ops++
				c.d.Stats.OneSidedOps++
				copy(val, b[lay.ValOff(i):lay.ValOff(i)+lay.ValSize])
				return nil
			}
		}
		c.d.Stats.Ops++
		c.d.Stats.OneSidedOps++
		return ErrNotFound
	}
	return ErrContended
}

// Put updates or inserts a key under the bucket seqlock:
//
//	READ bucket → pick slot → CAS(version, v, v+1) → one WRITE spanning
//	[target slot .. version word] carrying the new slot bytes, the
//	snapshot of any trailing slots, and version v+2 at the end.
//
// The successful CAS certifies the snapshot (the version cannot have
// moved between READ and CAS), so re-writing the trailing slots from it
// is safe; putting the version word last in the single WRITE means the
// publish and the data commit in the same instant even under the
// torn-write model. Three round trips on the contention-free path.
func (c *OneSided) Put(t *host.Thread, key uint64, val []byte) error {
	lay := c.d.Srv.Lay
	boff := lay.BucketOff(lay.BucketOf(key))
	voff := lay.VerOff()
	for attempt := 0; attempt < c.maxTries(); attempt++ {
		b, err := c.read(t, boff, lay.BucketBytes())
		if err != nil {
			return err
		}
		v := binary.LittleEndian.Uint64(b[voff:])
		if v&1 != 0 {
			c.d.Stats.TornRetries++
			t.P.Sleep(backoff(attempt, c.id))
			continue
		}
		slot := -1
		for i := 0; i < lay.SlotsPerBucket; i++ {
			k := binary.LittleEndian.Uint64(b[lay.KeyOff(i):])
			if k == key {
				slot = i
				break
			}
			if k == 0 && slot < 0 {
				slot = i
			}
		}
		if slot < 0 {
			c.d.Stats.Ops++
			c.d.Stats.OneSidedOps++
			return ErrFull
		}
		if old, err := c.cas(t, boff+voff, v, v+1); err != nil {
			return err
		} else if old != v {
			c.d.Stats.CASRetries++
			t.P.Sleep(backoff(attempt, c.id))
			continue
		}
		// Bucket locked. Stage [slot .. version word]: new slot bytes,
		// trailing slots from the certified snapshot, version v+2 last.
		off := lay.KeyOff(slot)
		stage := c.scratch.Bytes()[c.readSpan : c.readSpan+lay.BucketBytes()-off]
		copy(stage, b[off:lay.BucketBytes()])
		binary.LittleEndian.PutUint64(stage, key)
		n := copy(stage[8:8+lay.ValSize], val)
		for i := 8 + n; i < 8+lay.ValSize; i++ {
			stage[i] = 0
		}
		binary.LittleEndian.PutUint64(stage[voff-off:], v+2)
		t.WriteMem(c.stageOff(), len(stage))
		if _, err := c.post(t, nic.SendWR{
			Op:   nic.OpWrite,
			LKey: c.scratch.LKey, LAddr: c.stageOff(), Len: len(stage),
			RKey: c.d.Srv.Reg.RKey, RAddr: c.d.Srv.Base() + uint64(boff+off),
		}); err != nil {
			return err
		}
		c.d.Stats.Ops++
		c.d.Stats.OneSidedOps++
		return nil
	}
	return ErrContended
}

// Enqueue claims a tail ticket with FetchAdd, waits for its slot to free
// (previous lap consumed), and writes length+element+commit word in a
// single WRITE — the commit word lands last in address order, so a torn
// delivery can never expose a committed-but-unwritten element.
func (c *OneSided) Enqueue(t *host.Thread, data []byte) error {
	lay := c.d.Srv.Lay
	if len(data) > lay.ValSize {
		return fmt.Errorf("%w: element %d > %d", ErrRemote, len(data), lay.ValSize)
	}
	ticket, err := c.fetchAdd(t, lay.TailOff(), 1)
	if err != nil {
		return err
	}
	slot := int(ticket) & (lay.QueueCap - 1)
	// Wait for the slot's previous lap to be consumed.
	for attempt := 0; ; attempt++ {
		b, err := c.read(t, lay.SeqOff(slot), 8)
		if err != nil {
			return err
		}
		if binary.LittleEndian.Uint64(b) == ticket {
			break
		}
		c.d.Stats.QueueSpins++
		t.P.Sleep(backoff(attempt, c.id))
	}
	stage := c.scratch.Bytes()[c.readSpan : c.readSpan+lay.SlotBytes()]
	binary.LittleEndian.PutUint32(stage, uint32(len(data)))
	n := copy(stage[4:4+lay.ValSize], data)
	for i := 4 + n; i < 4+lay.ValSize; i++ {
		stage[i] = 0
	}
	binary.LittleEndian.PutUint64(stage[4+lay.ValSize:], ticket+1)
	t.WriteMem(c.stageOff(), lay.SlotBytes())
	if _, err := c.post(t, nic.SendWR{
		Op:   nic.OpWrite,
		LKey: c.scratch.LKey, LAddr: c.stageOff(), Len: lay.SlotBytes(),
		RKey: c.d.Srv.Reg.RKey, RAddr: c.d.Srv.Base() + uint64(lay.SlotOff(slot)),
	}); err != nil {
		return err
	}
	c.d.Stats.Ops++
	c.d.Stats.OneSidedOps++
	return nil
}

// Dequeue claims a head ticket with FetchAdd and polls the slot until its
// producer commits, then frees the slot for the next lap.
func (c *OneSided) Dequeue(t *host.Thread, buf []byte) (int, error) {
	lay := c.d.Srv.Lay
	ticket, err := c.fetchAdd(t, lay.HeadOff(), 1)
	if err != nil {
		return 0, err
	}
	slot := int(ticket) & (lay.QueueCap - 1)
	var n int
	for attempt := 0; ; attempt++ {
		b, err := c.read(t, lay.SlotOff(slot), lay.SlotBytes())
		if err != nil {
			return 0, err
		}
		if binary.LittleEndian.Uint64(b[4+lay.ValSize:]) == ticket+1 {
			n = int(binary.LittleEndian.Uint32(b))
			if n > lay.ValSize {
				n = lay.ValSize
			}
			n = copy(buf, b[4:4+n])
			break
		}
		c.d.Stats.QueueSpins++
		t.P.Sleep(backoff(attempt, c.id))
	}
	// Free the slot for lap+1.
	word := c.scratch.Bytes()[2*c.readSpan : 2*c.readSpan+8]
	binary.LittleEndian.PutUint64(word, ticket+uint64(lay.QueueCap))
	t.WriteMem(c.wordOff(), 8)
	if _, err := c.post(t, nic.SendWR{
		Op:   nic.OpWrite,
		LKey: c.scratch.LKey, LAddr: c.wordOff(), Len: 8,
		RKey: c.d.Srv.Reg.RKey, RAddr: c.d.Srv.Base() + uint64(lay.SeqOff(slot)),
	}); err != nil {
		return 0, err
	}
	c.d.Stats.Ops++
	c.d.Stats.OneSidedOps++
	return n, nil
}
