package rds

import (
	"encoding/binary"

	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
)

// RPC handler ids the rds server registers with its ScaleRPC server.
const (
	HandlerGet uint8 = iota + 1
	HandlerPut
	HandlerEnq
	HandlerDeq
)

// Response status bytes.
const (
	stOK byte = iota
	stNotFound
	stFull
	stEmpty
	stErr
)

// Server hosts the data structures: one registered region holding the
// hash table and ring, plus a ScaleRPC server whose handlers execute the
// same protocol server-side. The region is registered with RemoteAtomic in
// addition to RemoteRead/RemoteWrite — without it every one-sided CAS and
// FetchAdd would complete with a remote access error.
type Server struct {
	H   *host.Host
	Lay Layout
	Reg *memory.Region
	RPC *scalerpc.Server

	// Work is the CPU charge per RPC-handled op, on top of the modeled
	// memory traffic.
	Work sim.Duration
}

// newServer registers the region, stamps the ring's initial sequence
// numbers, and installs the RPC handlers (the caller starts the ScaleRPC
// server).
func newServer(h *host.Host, lay Layout, rpcCfg scalerpc.ServerConfig, work sim.Duration) *Server {
	lay.check()
	s := &Server{H: h, Lay: lay, Work: work}
	s.Reg = h.Mem.Register(lay.Bytes(), memory.PageSize2M,
		memory.LocalWrite|memory.RemoteRead|memory.RemoteWrite|memory.RemoteAtomic)
	lay.initQueue(s.Reg.Bytes())
	s.RPC = scalerpc.NewServer(h, rpcCfg)
	s.RPC.Register(HandlerGet, s.handleGet)
	s.RPC.Register(HandlerPut, s.handlePut)
	s.RPC.Register(HandlerEnq, s.handleEnq)
	s.RPC.Register(HandlerDeq, s.handleDeq)
	return s
}

// Base returns the region's virtual base address.
func (s *Server) Base() uint64 { return s.Reg.Base }

// lockBucket claims bucket boff's version word server-side. The read and
// the odd-write happen back to back with no intervening charge or yield,
// so within the cooperative simulator the claim is atomic with respect to
// one-sided CAS packets (which execute in their own NIC event): a CAS that
// lands before the claim is visible to the read; one that lands after sees
// the odd version and fails. Returns the pre-lock version and false if the
// bucket was already locked.
func (s *Server) lockBucket(boff int) (uint64, bool) {
	buf := s.Reg.Bytes()
	voff := boff + s.Lay.VerOff()
	v := binary.LittleEndian.Uint64(buf[voff:])
	if v&1 != 0 {
		return v, false
	}
	binary.LittleEndian.PutUint64(buf[voff:], v+1)
	return v, true
}

// unlockBucket publishes the new even version.
func (s *Server) unlockBucket(boff int, v uint64) {
	binary.LittleEndian.PutUint64(s.Reg.Bytes()[boff+s.Lay.VerOff():], v+2)
}

// handleGet: req = [8B key] → resp [status][ValSize value].
// Reads are served under the seqlock: retry the scan while the version is
// odd or moved, exactly like a local seqlock reader.
func (s *Server) handleGet(t *host.Thread, clientID uint16, req []byte, out []byte) int {
	if len(req) < 8 {
		out[0] = stErr
		return 1
	}
	key := binary.LittleEndian.Uint64(req)
	lay := s.Lay
	boff := lay.BucketOff(lay.BucketOf(key))
	buf := s.Reg.Bytes()
	t.Work(s.Work)
	t.ReadMem(s.Reg.Base+uint64(boff), lay.BucketBytes())
	for spin := 0; ; spin++ {
		v := binary.LittleEndian.Uint64(buf[boff+lay.VerOff():])
		if v&1 != 0 {
			// Locked by a one-sided writer mid-update: wait it out. Sleep,
			// not Work — worker CPU charges are batched, so only a real
			// sleep lets the lock holder's WRITE land.
			if spin > maxAttempts {
				out[0] = stErr
				return 1
			}
			t.P.Sleep(backoffBase)
			continue
		}
		// The scan below runs without yielding, so no writer can slip in
		// between the version check and the slot reads.
		for i := 0; i < lay.SlotsPerBucket; i++ {
			k := binary.LittleEndian.Uint64(buf[boff+lay.KeyOff(i):])
			if k == key {
				out[0] = stOK
				copy(out[1:1+lay.ValSize], buf[boff+lay.ValOff(i):])
				return 1 + lay.ValSize
			}
		}
		out[0] = stNotFound
		return 1
	}
}

// handlePut: req = [8B key][value] → resp [status].
func (s *Server) handlePut(t *host.Thread, clientID uint16, req []byte, out []byte) int {
	if len(req) < 8 {
		out[0] = stErr
		return 1
	}
	key := binary.LittleEndian.Uint64(req)
	val := req[8:]
	lay := s.Lay
	boff := lay.BucketOff(lay.BucketOf(key))
	buf := s.Reg.Bytes()
	t.Work(s.Work)
	t.ReadMem(s.Reg.Base+uint64(boff), lay.BucketBytes())
	var v uint64
	for spin := 0; ; spin++ {
		var ok bool
		if v, ok = s.lockBucket(boff); ok {
			break
		}
		if spin > maxAttempts {
			out[0] = stErr
			return 1
		}
		// Sleep, not Work: see handleGet.
		t.P.Sleep(backoffBase)
	}
	defer s.unlockBucket(boff, v)
	free := -1
	for i := 0; i < lay.SlotsPerBucket; i++ {
		k := binary.LittleEndian.Uint64(buf[boff+lay.KeyOff(i):])
		if k == key {
			free = i
			break
		}
		if k == 0 && free < 0 {
			free = i
		}
	}
	if free < 0 {
		out[0] = stFull
		return 1
	}
	binary.LittleEndian.PutUint64(buf[boff+lay.KeyOff(free):], key)
	dst := buf[boff+lay.ValOff(free) : boff+lay.ValOff(free)+lay.ValSize]
	n := copy(dst, val)
	for i := n; i < lay.ValSize; i++ {
		dst[i] = 0
	}
	t.WriteMem(s.Reg.Base+uint64(boff+lay.KeyOff(free)), 8+lay.ValSize)
	out[0] = stOK
	return 1
}

// handleEnq: req = [element bytes] → resp [status]. The server claims a
// ticket only when the target slot is free for this lap, so — unlike the
// one-sided producer — a full ring is reported instead of blocked on.
func (s *Server) handleEnq(t *host.Thread, clientID uint16, req []byte, out []byte) int {
	lay := s.Lay
	if len(req) > lay.ValSize {
		out[0] = stErr
		return 1
	}
	buf := s.Reg.Bytes()
	t.Work(s.Work)
	// Ticket claim: read tail and slot seq, then advance tail — no yield
	// in between, so concurrent one-sided FetchAdds serialize around it.
	ticket := binary.LittleEndian.Uint64(buf[lay.TailOff():])
	slot := int(ticket) & (lay.QueueCap - 1)
	seq := binary.LittleEndian.Uint64(buf[lay.SeqOff(slot):])
	if seq != ticket {
		out[0] = stFull
		return 1
	}
	binary.LittleEndian.PutUint64(buf[lay.TailOff():], ticket+1)
	soff := lay.SlotOff(slot)
	binary.LittleEndian.PutUint32(buf[soff:], uint32(len(req)))
	dst := buf[soff+4 : soff+4+lay.ValSize]
	n := copy(dst, req)
	for i := n; i < lay.ValSize; i++ {
		dst[i] = 0
	}
	t.WriteMem(s.Reg.Base+uint64(soff), lay.SlotBytes())
	// Commit last, after the element bytes.
	binary.LittleEndian.PutUint64(buf[lay.SeqOff(slot):], ticket+1)
	out[0] = stOK
	return 1
}

// handleDeq: req = [] → resp [status][4B len][element bytes].
func (s *Server) handleDeq(t *host.Thread, clientID uint16, req []byte, out []byte) int {
	lay := s.Lay
	buf := s.Reg.Bytes()
	t.Work(s.Work)
	ticket := binary.LittleEndian.Uint64(buf[lay.HeadOff():])
	slot := int(ticket) & (lay.QueueCap - 1)
	seq := binary.LittleEndian.Uint64(buf[lay.SeqOff(slot):])
	if seq != ticket+1 {
		out[0] = stEmpty
		return 1
	}
	binary.LittleEndian.PutUint64(buf[lay.HeadOff():], ticket+1)
	soff := lay.SlotOff(slot)
	n := int(binary.LittleEndian.Uint32(buf[soff:]))
	if n > lay.ValSize {
		n = lay.ValSize
	}
	t.ReadMem(s.Reg.Base+uint64(soff), lay.SlotBytes())
	out[0] = stOK
	binary.LittleEndian.PutUint32(out[1:], uint32(n))
	copy(out[5:5+n], buf[soff+4:soff+4+n])
	// Free the slot for lap+1.
	binary.LittleEndian.PutUint64(buf[lay.SeqOff(slot):], ticket+uint64(lay.QueueCap))
	return 5 + n
}

// Prepopulate stores keys 1..n with a fill pattern directly (no simulated
// cost) so read-heavy workloads start from a warm table.
func (s *Server) Prepopulate(n uint64, fill byte) {
	lay := s.Lay
	buf := s.Reg.Bytes()
	val := make([]byte, lay.ValSize)
	for i := range val {
		val[i] = fill
	}
	for key := uint64(1); key <= n; key++ {
		boff := lay.BucketOff(lay.BucketOf(key))
		for i := 0; i < lay.SlotsPerBucket; i++ {
			k := binary.LittleEndian.Uint64(buf[boff+lay.KeyOff(i):])
			if k == key {
				break
			}
			if k == 0 {
				binary.LittleEndian.PutUint64(buf[boff+lay.KeyOff(i):], key)
				copy(buf[boff+lay.ValOff(i):], val)
				break
			}
		}
	}
}
