package rds

import (
	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/memory"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
)

// Config describes one rds deployment on a cluster.
type Config struct {
	// ServerHost is the index of the host that owns the structures.
	ServerHost int
	// Layout fixes the region geometry; the zero value uses DefaultLayout.
	Layout Layout
	// RPC tunes the ScaleRPC server the rpc backend calls into; the zero
	// value uses scalerpc.DefaultServerConfig.
	RPC scalerpc.ServerConfig
	// ServerWork is the CPU charge per RPC-handled op (default 100 ns).
	ServerWork sim.Duration
}

// Deployment is a running rds instance: the server plus the connection
// factories for the three backends. All clients of one deployment share
// the Stats block, registered under the cluster's "rds" telemetry scope.
type Deployment struct {
	C     *cluster.Cluster
	Cfg   Config
	Srv   *Server
	Stats Stats

	clients int
}

// Deploy builds the server on cfg.ServerHost, starts its ScaleRPC side,
// and registers the subsystem's telemetry.
func Deploy(c *cluster.Cluster, cfg Config) *Deployment {
	if cfg.Layout == (Layout{}) {
		cfg.Layout = DefaultLayout()
	}
	if cfg.RPC.Workers == 0 {
		cfg.RPC = scalerpc.DefaultServerConfig()
	}
	if cfg.ServerWork <= 0 {
		cfg.ServerWork = 100 * sim.Nanosecond
	}
	d := &Deployment{C: c, Cfg: cfg}
	d.Srv = newServer(c.Hosts[cfg.ServerHost], cfg.Layout, cfg.RPC, cfg.ServerWork)
	d.Srv.RPC.Start()
	sc := c.Telemetry.UniqueScope("rds")
	sc.CounterVar("ops", &d.Stats.Ops)
	sc.CounterVar("onesided.ops", &d.Stats.OneSidedOps)
	sc.CounterVar("rpc.ops", &d.Stats.RPCOps)
	sc.CounterVar("cas_retries", &d.Stats.CASRetries)
	sc.CounterVar("torn_retries", &d.Stats.TornRetries)
	sc.CounterVar("queue_spins", &d.Stats.QueueSpins)
	sc.CounterVar("adaptive.switches", &d.Stats.Switches)
	sc.CounterVar("adaptive.probes", &d.Stats.Probes)
	return d
}

// NewOneSided connects a one-sided client on host ch: a dedicated RC QP
// pair to the server (the server side stays passive — one-sided traffic
// consumes no receives and generates no responder CQEs) plus a private
// scratch region for READ landings and WRITE staging.
func (d *Deployment) NewOneSided(ch *host.Host) *OneSided {
	c := &OneSided{d: d, id: d.clients, readSpan: span(d.Srv.Lay)}
	d.clients++
	c.cq = ch.NIC.CreateCQ()
	scq := d.Srv.H.NIC.CreateCQ()
	c.qp, _ = d.C.ConnectRC(ch, d.Srv.H, c.cq, c.cq, scq, scq)
	c.scratch = ch.Mem.Register(2*c.readSpan+64, memory.PageSize4K, memory.LocalWrite)
	return c
}

// NewRPC connects a two-sided client on host ch through the server's
// ScaleRPC endpoint. sig is the client thread's activity signal.
func (d *Deployment) NewRPC(ch *host.Host, sig *sim.Signal) *RPCClient {
	c := &RPCClient{d: d, id: d.clients, req: make([]byte, 8+d.Srv.Lay.ValSize)}
	d.clients++
	c.conn = d.Srv.RPC.Connect(ch, sig)
	return c
}

// NewAdaptive builds the hybrid client: one endpoint of each backend plus
// the selection state.
func (d *Deployment) NewAdaptive(ch *host.Host, sig *sim.Signal, pol Policy) *Adaptive {
	return newAdaptive(d, d.NewOneSided(ch), d.NewRPC(ch, sig), pol)
}

// NewClient builds a client of the given kind (adaptive uses the default
// policy).
func (d *Deployment) NewClient(kind Kind, ch *host.Host, sig *sim.Signal) Client {
	switch kind {
	case KindOneSided:
		return d.NewOneSided(ch)
	case KindRPC:
		return d.NewRPC(ch, sig)
	default:
		return d.NewAdaptive(ch, sig, Policy{})
	}
}
