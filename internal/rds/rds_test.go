package rds_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/rds"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
)

// testRPCConfig shrinks the ScaleRPC server for fast tests.
func testRPCConfig() scalerpc.ServerConfig {
	cfg := scalerpc.DefaultServerConfig()
	cfg.Workers = 4
	cfg.GroupSize = 8
	cfg.TimeSlice = 50 * sim.Microsecond
	cfg.BlocksPerClient = 8
	cfg.MaxClients = 256
	return cfg
}

// deployTest builds a cluster and deployment with a small layout.
func deployTest(hosts int, mutate func(*cluster.Config)) (*cluster.Cluster, *rds.Deployment) {
	ccfg := cluster.Default(hosts)
	if mutate != nil {
		mutate(&ccfg)
	}
	c := cluster.New(ccfg)
	d := rds.Deploy(c, rds.Config{
		Layout: rds.Layout{Buckets: 64, SlotsPerBucket: 4, ValSize: 32, QueueCap: 64},
		RPC:    testRPCConfig(),
	})
	return c, d
}

// fill produces a deterministic value for key k, tagged by writer w.
func fill(val []byte, k uint64, w byte) {
	binary.LittleEndian.PutUint64(val, k)
	for i := 8; i < len(val); i++ {
		val[i] = w
	}
}

func TestLayoutGeometry(t *testing.T) {
	l := rds.Layout{Buckets: 8, SlotsPerBucket: 3, ValSize: 16, QueueCap: 4}
	if l.BucketBytes() != 8+3*24 {
		t.Fatalf("BucketBytes = %d", l.BucketBytes())
	}
	if l.VerOff() != 3*24 {
		t.Fatalf("VerOff = %d", l.VerOff())
	}
	if l.SlotBytes() != 12+16 {
		t.Fatalf("SlotBytes = %d", l.SlotBytes())
	}
	if l.HeadOff() != l.TailOff()+64 || l.RingOff() != l.TailOff()+128 {
		t.Fatal("queue control words misplaced")
	}
	if l.Bytes() != l.RingOff()+4*l.SlotBytes() {
		t.Fatalf("Bytes = %d", l.Bytes())
	}
	if l.SeqOff(1) != l.SlotOff(1)+4+16 {
		t.Fatal("SeqOff misplaced")
	}
	// Buckets must scatter: all 8 buckets hit over a small key range.
	seen := map[int]bool{}
	for k := uint64(1); k < 200; k++ {
		seen[l.BucketOf(k)] = true
	}
	if len(seen) != 8 {
		t.Fatalf("only %d/8 buckets hit", len(seen))
	}
}

// TestBackendInterop writes and reads through every pairing of backends:
// all three manipulate the same bytes, so a put through one must be
// visible to a get through any other.
func TestBackendInterop(t *testing.T) {
	c, d := deployTest(3, nil)
	defer c.Close()

	sig := sim.NewSignal(c.Env)
	one := d.NewOneSided(c.Hosts[1])
	rpc := d.NewRPC(c.Hosts[1], sig)
	ada := d.NewAdaptive(c.Hosts[2], sim.NewSignal(c.Env), rds.Policy{})
	clients := []rds.Client{one, rpc, ada}

	done := false
	c.Hosts[1].Spawn("interop", func(th *host.Thread) {
		val := make([]byte, 32)
		got := make([]byte, 32)
		// Every backend writes its own keys; every backend reads all keys.
		for wi, w := range clients {
			for k := uint64(1); k <= 5; k++ {
				key := uint64(wi*100) + k
				fill(val, key, byte(wi+1))
				if err := w.Put(th, key, val); err != nil {
					t.Errorf("%v put %d: %v", w.Kind(), key, err)
				}
			}
		}
		for _, r := range clients {
			for wi := range clients {
				for k := uint64(1); k <= 5; k++ {
					key := uint64(wi*100) + k
					fill(val, key, byte(wi+1))
					if err := r.Get(th, key, got); err != nil {
						t.Errorf("%v get %d: %v", r.Kind(), key, err)
						continue
					}
					if !bytes.Equal(got, val) {
						t.Errorf("%v get %d: value mismatch", r.Kind(), key)
					}
				}
			}
			if err := r.Get(th, 9999, got); err != rds.ErrNotFound {
				t.Errorf("%v get missing: %v, want ErrNotFound", r.Kind(), err)
			}
		}
		// Queue interop: each backend enqueues, the next backend dequeues.
		msg := []byte("hello from the ring")
		buf := make([]byte, 32)
		for i, w := range clients {
			if err := w.Enqueue(th, msg); err != nil {
				t.Errorf("%v enqueue: %v", w.Kind(), err)
			}
			rd := clients[(i+1)%len(clients)]
			n, err := rd.Dequeue(th, buf)
			if err != nil {
				t.Errorf("%v dequeue: %v", rd.Kind(), err)
			} else if !bytes.Equal(buf[:n], msg) {
				t.Errorf("%v dequeue: got %q", rd.Kind(), buf[:n])
			}
		}
		done = true
	})
	c.Env.RunUntil(200 * sim.Millisecond)
	if !done {
		t.Fatal("interop thread did not finish")
	}
}

// TestOneSidedOverwriteAndFull exercises slot reuse and bucket overflow.
func TestOneSidedOverwriteAndFull(t *testing.T) {
	ccfg := cluster.Default(2)
	c := cluster.New(ccfg)
	defer c.Close()
	// Single bucket so every key collides.
	d := rds.Deploy(c, rds.Config{
		Layout: rds.Layout{Buckets: 1, SlotsPerBucket: 2, ValSize: 16, QueueCap: 4},
		RPC:    testRPCConfig(),
	})
	one := d.NewOneSided(c.Hosts[1])
	done := false
	c.Hosts[1].Spawn("full", func(th *host.Thread) {
		val := make([]byte, 16)
		fill(val, 1, 1)
		if err := one.Put(th, 1, val); err != nil {
			t.Errorf("put 1: %v", err)
		}
		if err := one.Put(th, 2, val); err != nil {
			t.Errorf("put 2: %v", err)
		}
		if err := one.Put(th, 3, val); err != rds.ErrFull {
			t.Errorf("put 3: %v, want ErrFull", err)
		}
		// Overwrite key 1 — must reuse its slot, not report full.
		fill(val, 1, 9)
		if err := one.Put(th, 1, val); err != nil {
			t.Errorf("overwrite: %v", err)
		}
		got := make([]byte, 16)
		if err := one.Get(th, 1, got); err != nil || !bytes.Equal(got, val) {
			t.Errorf("get after overwrite: %v", err)
		}
		done = true
	})
	c.Env.RunUntil(50 * sim.Millisecond)
	if !done {
		t.Fatal("thread did not finish")
	}
}

// TestCASContentionConsistency hammers a few hot keys from many one-sided
// writers (several on a remote host, with torn writes enabled) while a
// reader validates every observed value. The seqlock must never expose a
// half-written value: every read is either the fill of some writer or the
// prepopulated pattern, never a blend.
func TestCASContentionConsistency(t *testing.T) {
	c, d := deployTest(3, func(cfg *cluster.Config) {
		cfg.NIC.TornWriteDelay = 300 * sim.Nanosecond
	})
	defer c.Close()
	const writers = 6
	const hotKeys = 2 // few keys → real CAS collisions
	horizon := 20 * sim.Millisecond

	checkVal := func(who string, key uint64, v []byte) {
		k := binary.LittleEndian.Uint64(v)
		if k != key {
			t.Errorf("%s: value for key %d carries key %d (torn?)", who, key, k)
			return
		}
		for i := 9; i < len(v); i++ {
			if v[i] != v[8] {
				t.Errorf("%s: key %d: mixed fill bytes %d vs %d (torn write exposed)",
					who, key, v[8], v[i])
				return
			}
		}
	}

	writes := 0
	for w := 0; w < writers; w++ {
		w := w
		cl := d.NewOneSided(c.Hosts[1+w%2])
		c.Hosts[1+w%2].Spawn(fmt.Sprintf("w%d", w), func(th *host.Thread) {
			val := make([]byte, 32)
			for i := 0; th.P.Now() < horizon; i++ {
				key := uint64(1 + (i+w)%hotKeys)
				fill(val, key, byte(1+(w+i)%250))
				if err := cl.Put(th, key, val); err != nil {
					t.Errorf("w%d put: %v", w, err)
					return
				}
				writes++
			}
		})
	}
	reads := 0
	rd := d.NewOneSided(c.Hosts[2])
	c.Hosts[2].Spawn("reader", func(th *host.Thread) {
		got := make([]byte, 32)
		for i := 0; th.P.Now() < horizon; i++ {
			key := uint64(1 + i%hotKeys)
			err := rd.Get(th, key, got)
			if err == rds.ErrNotFound {
				continue // not yet written
			}
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			checkVal("reader", key, got)
			reads++
		}
	})
	c.Env.RunUntil(horizon + 5*sim.Millisecond)
	if writes < 100 || reads < 100 {
		t.Fatalf("too little traffic: %d writes, %d reads", writes, reads)
	}
	if d.Stats.CASRetries == 0 {
		t.Fatal("hot-key hammering produced no CAS retries — contention not exercised")
	}
	t.Logf("writes=%d reads=%d casRetries=%d tornRetries=%d",
		writes, reads, d.Stats.CASRetries, d.Stats.TornRetries)
}

// TestQueueMPMCAcrossBackends runs producers and consumers split across
// backends and checks exact multiset delivery: every enqueued token is
// dequeued exactly once.
func TestQueueMPMCAcrossBackends(t *testing.T) {
	c, d := deployTest(3, nil)
	defer c.Close()
	const producers = 4
	const perProducer = 40
	const consumers = 4
	const total = producers * perProducer

	mkClient := func(i int, h *host.Host) rds.Client {
		if i%2 == 0 {
			return d.NewOneSided(h)
		}
		return d.NewRPC(h, sim.NewSignal(c.Env))
	}
	for p := 0; p < producers; p++ {
		p := p
		cl := mkClient(p, c.Hosts[1])
		c.Hosts[1].Spawn(fmt.Sprintf("prod%d", p), func(th *host.Thread) {
			tok := make([]byte, 8)
			for i := 0; i < perProducer; i++ {
				binary.LittleEndian.PutUint64(tok, uint64(p*1000+i))
				if err := cl.Enqueue(th, tok); err != nil {
					t.Errorf("prod%d: %v", p, err)
					return
				}
			}
		})
	}
	got := make(map[uint64]int)
	for cn := 0; cn < consumers; cn++ {
		cn := cn
		cl := mkClient(cn+1, c.Hosts[2])
		c.Hosts[2].Spawn(fmt.Sprintf("cons%d", cn), func(th *host.Thread) {
			buf := make([]byte, 32)
			for i := 0; i < total/consumers; i++ {
				n, err := cl.Dequeue(th, buf)
				if err != nil {
					t.Errorf("cons%d: %v", cn, err)
					return
				}
				if n != 8 {
					t.Errorf("cons%d: element len %d", cn, n)
					return
				}
				got[binary.LittleEndian.Uint64(buf)]++
			}
		})
	}
	c.Env.RunUntil(200 * sim.Millisecond)
	if len(got) != total {
		t.Fatalf("dequeued %d distinct tokens, want %d", len(got), total)
	}
	for tok, n := range got {
		if n != 1 {
			t.Fatalf("token %d delivered %d times", tok, n)
		}
	}
}

// TestAdaptiveFallsBackUnderContention drives an adaptive client whose
// one-sided path is made hostile (many one-sided writers hammering the
// same keys) and checks the policy trips to RPC for puts; when the
// aggressors stop, probing must bring the preference back to one-sided.
func TestAdaptiveFallsBackUnderContention(t *testing.T) {
	c := cluster.New(cluster.Default(3))
	defer c.Close()
	// An expensive handler (5 µs of server CPU per op) makes the RPC path
	// the clear loser at quiescence — one-sided's three cheap round trips
	// beat it — while contention still inverts the ranking: CAS-retry
	// storms cost far more than 5 µs.
	d := rds.Deploy(c, rds.Config{
		Layout:     rds.Layout{Buckets: 64, SlotsPerBucket: 4, ValSize: 32, QueueCap: 64},
		RPC:        testRPCConfig(),
		ServerWork: 5 * sim.Microsecond,
	})
	const hotKeys = 2
	phase1 := 30 * sim.Millisecond  // contention
	phase2 := 120 * sim.Millisecond // quiescence

	// Aggressors: one-sided writers on host 1 hammering two keys.
	for w := 0; w < 6; w++ {
		w := w
		cl := d.NewOneSided(c.Hosts[1])
		c.Hosts[1].Spawn(fmt.Sprintf("agg%d", w), func(th *host.Thread) {
			val := make([]byte, 32)
			for i := 0; th.P.Now() < phase1; i++ {
				key := uint64(1 + (i+w)%hotKeys)
				fill(val, key, byte(1+w))
				if err := cl.Put(th, key, val); err != nil {
					t.Errorf("agg%d: %v", w, err)
					return
				}
			}
		})
	}

	ada := d.NewAdaptive(c.Hosts[2], sim.NewSignal(c.Env), rds.Policy{
		Window: 100 * sim.Microsecond, ProbeEvery: 16, CASTrip: 1.0,
	})
	if ada.PreferredPut() != rds.KindOneSided {
		t.Fatalf("cold-start prior for 32-byte values = %v, want onesided", ada.PreferredPut())
	}
	sawRPCDuringStorm := false
	backOneSided := false
	c.Hosts[2].Spawn("ada", func(th *host.Thread) {
		val := make([]byte, 32)
		for i := 0; th.P.Now() < phase1; i++ {
			key := uint64(1 + i%hotKeys)
			fill(val, key, 200)
			if err := ada.Put(th, key, val); err != nil {
				t.Errorf("ada put: %v", err)
				return
			}
			if ada.PreferredPut() == rds.KindRPC {
				sawRPCDuringStorm = true
			}
		}
		for i := 0; th.P.Now() < phase2; i++ {
			key := uint64(1 + i%hotKeys)
			fill(val, key, 201)
			if err := ada.Put(th, key, val); err != nil {
				t.Errorf("ada quiet put: %v", err)
				return
			}
			if ada.PreferredPut() == rds.KindOneSided {
				backOneSided = true
			}
		}
	})
	c.Env.RunUntil(phase2 + 5*sim.Millisecond)
	if !sawRPCDuringStorm {
		t.Fatalf("adaptive never preferred RPC under contention (switches=%d, casRetries=%d)",
			d.Stats.Switches, d.Stats.CASRetries)
	}
	if !backOneSided {
		t.Fatalf("adaptive never returned to one-sided under quiescence (probes=%d)",
			d.Stats.Probes)
	}
	if d.Stats.Switches == 0 {
		t.Fatal("no preference switches recorded")
	}
}

// TestDeterministicStats replays one contended scenario twice and demands
// identical stats — the subsystem inherits the repo's determinism bar.
func TestDeterministicStats(t *testing.T) {
	run := func() rds.Stats {
		c, d := deployTest(3, func(cfg *cluster.Config) {
			cfg.NIC.TornWriteDelay = 300 * sim.Nanosecond
		})
		defer c.Close()
		horizon := 10 * sim.Millisecond
		for w := 0; w < 4; w++ {
			w := w
			cl := d.NewOneSided(c.Hosts[1+w%2])
			c.Hosts[1+w%2].Spawn(fmt.Sprintf("w%d", w), func(th *host.Thread) {
				val := make([]byte, 32)
				for i := 0; th.P.Now() < horizon; i++ {
					key := uint64(1 + (i+w)%3)
					fill(val, key, byte(1+w))
					if err := cl.Put(th, key, val); err != nil {
						t.Errorf("w%d: %v", w, err)
						return
					}
				}
			})
		}
		c.Env.RunUntil(horizon + 2*sim.Millisecond)
		return d.Stats
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Ops == 0 || a.CASRetries == 0 {
		t.Fatalf("scenario too tame: %+v", a)
	}
}
