// Package rpctest runs one conformance suite across all four RPC
// transports (ScaleRPC, RawWrite, HERD, FaSST), checking that they behave
// identically at the interface level: payload integrity, request/response
// correlation, window limits, error propagation, and progress under load.
package rpctest_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"scalerpc/internal/baseline/fasstrpc"
	"scalerpc/internal/baseline/herdrpc"
	"scalerpc/internal/baseline/rawrpc"
	"scalerpc/internal/baseline/selfrpc"
	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
)

// transport abstracts server construction across implementations.
type transport struct {
	name string
	// build creates a started server on h with the given worker count and
	// returns a connect function.
	build func(c *cluster.Cluster, workers int, reg func(rpccore.Server)) func(*host.Host, *sim.Signal) rpccore.Conn
}

func transports() []transport {
	return []transport{
		{"scalerpc", func(c *cluster.Cluster, workers int, reg func(rpccore.Server)) func(*host.Host, *sim.Signal) rpccore.Conn {
			cfg := scalerpc.DefaultServerConfig()
			cfg.Workers = workers
			cfg.GroupSize = 8
			cfg.TimeSlice = 50 * sim.Microsecond
			cfg.BlocksPerClient = 8
			s := scalerpc.NewServer(c.Hosts[0], cfg)
			reg(s)
			s.Start()
			return func(h *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(h, sig) }
		}},
		{"rawwrite", func(c *cluster.Cluster, workers int, reg func(rpccore.Server)) func(*host.Host, *sim.Signal) rpccore.Conn {
			cfg := rawrpc.DefaultServerConfig()
			cfg.Workers = workers
			cfg.MaxClients = 64
			cfg.BlocksPerClient = 8
			s := rawrpc.NewServer(c.Hosts[0], cfg)
			reg(s)
			s.Start()
			return func(h *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(h, sig) }
		}},
		{"herd", func(c *cluster.Cluster, workers int, reg func(rpccore.Server)) func(*host.Host, *sim.Signal) rpccore.Conn {
			cfg := herdrpc.DefaultServerConfig()
			cfg.Workers = workers
			cfg.MaxClients = 64
			cfg.BlocksPerClient = 8
			s := herdrpc.NewServer(c.Hosts[0], cfg)
			reg(s)
			s.Start()
			return func(h *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(h, sig) }
		}},
		{"fasst", func(c *cluster.Cluster, workers int, reg func(rpccore.Server)) func(*host.Host, *sim.Signal) rpccore.Conn {
			cfg := fasstrpc.DefaultServerConfig()
			cfg.Workers = workers
			cfg.ClientWindow = 8
			s := fasstrpc.NewServer(c.Hosts[0], cfg)
			reg(s)
			s.Start()
			return func(h *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(h, sig) }
		}},
		{"selfrpc", func(c *cluster.Cluster, workers int, reg func(rpccore.Server)) func(*host.Host, *sim.Signal) rpccore.Conn {
			cfg := selfrpc.DefaultServerConfig()
			cfg.Workers = workers
			cfg.MaxClients = 64
			cfg.BlocksPerClient = 8
			s := selfrpc.NewServer(c.Hosts[0], cfg)
			reg(s)
			s.Start()
			return func(h *host.Host, sig *sim.Signal) rpccore.Conn { return s.Connect(h, sig) }
		}},
	}
}

func registerEcho(s rpccore.Server) {
	s.Register(1, func(t *host.Thread, id uint16, req, out []byte) int {
		t.Work(100)
		return copy(out, req)
	})
	s.Register(2, func(t *host.Thread, id uint16, req, out []byte) int {
		// Returns the square of a uint32 plus the caller's id.
		v := binary.LittleEndian.Uint32(req)
		binary.LittleEndian.PutUint64(out, uint64(v)*uint64(v))
		binary.LittleEndian.PutUint16(out[8:], id)
		return 10
	})
}

func TestEchoAllTransports(t *testing.T) {
	for _, tr := range transports() {
		tr := tr
		t.Run(tr.name, func(t *testing.T) {
			c := cluster.New(cluster.Default(2))
			defer c.Close()
			connect := tr.build(c, 2, registerEcho)
			sig := sim.NewSignal(c.Env)
			conn := connect(c.Hosts[1], sig)
			want := []byte("conformance-payload-123")
			var got []byte
			c.Hosts[1].Spawn("cli", func(th *host.Thread) {
				for !conn.TrySend(th, 1, want, 42) {
					conn.Poll(th, func(rpccore.Response) {})
					sig.WaitTimeout(th.P, 10*sim.Microsecond)
				}
				for got == nil {
					conn.Poll(th, func(r rpccore.Response) {
						if r.ReqID == 42 {
							got = append([]byte(nil), r.Payload...)
						}
					})
					if got == nil {
						sig.WaitTimeout(th.P, 10*sim.Microsecond)
					}
				}
			})
			c.Env.RunUntil(10 * sim.Millisecond)
			if !bytes.Equal(got, want) {
				t.Fatalf("echo = %q, want %q", got, want)
			}
		})
	}
}

func TestComputeHandlerAndClientID(t *testing.T) {
	for _, tr := range transports() {
		tr := tr
		t.Run(tr.name, func(t *testing.T) {
			c := cluster.New(cluster.Default(2))
			defer c.Close()
			connect := tr.build(c, 2, registerEcho)
			sig := sim.NewSignal(c.Env)
			conn := connect(c.Hosts[1], sig)
			req := make([]byte, 4)
			binary.LittleEndian.PutUint32(req, 7)
			var sq uint64
			done := false
			c.Hosts[1].Spawn("cli", func(th *host.Thread) {
				for !conn.TrySend(th, 2, req, 1) {
					sig.WaitTimeout(th.P, 10*sim.Microsecond)
				}
				for !done {
					conn.Poll(th, func(r rpccore.Response) {
						sq = binary.LittleEndian.Uint64(r.Payload)
						done = true
					})
					if !done {
						sig.WaitTimeout(th.P, 10*sim.Microsecond)
					}
				}
			})
			c.Env.RunUntil(10 * sim.Millisecond)
			if !done || sq != 49 {
				t.Fatalf("square(7) = %d (done=%v)", sq, done)
			}
		})
	}
}

func TestUnknownHandlerErrorAllTransports(t *testing.T) {
	for _, tr := range transports() {
		tr := tr
		t.Run(tr.name, func(t *testing.T) {
			c := cluster.New(cluster.Default(2))
			defer c.Close()
			connect := tr.build(c, 1, registerEcho)
			sig := sim.NewSignal(c.Env)
			conn := connect(c.Hosts[1], sig)
			var gotErr, done bool
			c.Hosts[1].Spawn("cli", func(th *host.Thread) {
				for !conn.TrySend(th, 99, []byte("x"), 3) {
					sig.WaitTimeout(th.P, 10*sim.Microsecond)
				}
				for !done {
					conn.Poll(th, func(r rpccore.Response) { gotErr, done = r.Err, true })
					if !done {
						sig.WaitTimeout(th.P, 10*sim.Microsecond)
					}
				}
			})
			c.Env.RunUntil(10 * sim.Millisecond)
			if !done || !gotErr {
				t.Fatalf("done=%v err=%v, want error response", done, gotErr)
			}
		})
	}
}

func TestThroughputUnderLoadAllTransports(t *testing.T) {
	for _, tr := range transports() {
		tr := tr
		t.Run(tr.name, func(t *testing.T) {
			c := cluster.New(cluster.Default(3))
			defer c.Close()
			connect := tr.build(c, 4, registerEcho)
			horizon := 2 * sim.Millisecond
			var stats []*rpccore.DriverStats
			for hi := 1; hi <= 2; hi++ {
				for i := 0; i < 8; i++ {
					sig := sim.NewSignal(c.Env)
					conn := connect(c.Hosts[hi], sig)
					st := &rpccore.DriverStats{}
					stats = append(stats, st)
					hi := hi
					c.Hosts[hi].Spawn("drv", func(th *host.Thread) {
						*st = rpccore.RunDriver(th, []rpccore.Conn{conn}, rpccore.DriverConfig{
							Batch: 4, Handler: 1, PayloadSize: 32, Seed: uint64(i),
						}, sig, func() bool { return th.P.Now() >= horizon })
					})
				}
			}
			c.Env.RunUntil(horizon + sim.Millisecond)
			var total uint64
			for _, st := range stats {
				if st.Completed == 0 {
					t.Fatal("a client starved")
				}
				total += st.Completed
			}
			if total < 500 {
				t.Fatalf("only %d ops in 2 ms", total)
			}
		})
	}
}

func TestPayloadSizesAllTransports(t *testing.T) {
	// Sizes from tiny to near-block-size must round-trip bit-exactly.
	sizes := []int{0, 1, 8, 32, 100, 512, 1024, 3000}
	for _, tr := range transports() {
		tr := tr
		t.Run(tr.name, func(t *testing.T) {
			c := cluster.New(cluster.Default(2))
			defer c.Close()
			connect := tr.build(c, 2, registerEcho)
			sig := sim.NewSignal(c.Env)
			conn := connect(c.Hosts[1], sig)
			fail := ""
			c.Hosts[1].Spawn("cli", func(th *host.Thread) {
				for i, sz := range sizes {
					want := make([]byte, sz)
					for j := range want {
						want[j] = byte(i + j)
					}
					for !conn.TrySend(th, 1, want, uint64(i)) {
						conn.Poll(th, func(rpccore.Response) {})
						sig.WaitTimeout(th.P, 10*sim.Microsecond)
					}
					done := false
					for !done {
						conn.Poll(th, func(r rpccore.Response) {
							if r.ReqID != uint64(i) {
								return
							}
							if !bytes.Equal(r.Payload, want) {
								fail = fmt.Sprintf("size %d corrupted (%d bytes back)", sz, len(r.Payload))
							}
							done = true
						})
						if !done {
							sig.WaitTimeout(th.P, 10*sim.Microsecond)
						}
					}
				}
			})
			c.Env.RunUntil(50 * sim.Millisecond)
			if fail != "" {
				t.Fatal(fail)
			}
		})
	}
}
