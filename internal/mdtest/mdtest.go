// Package mdtest generates mdtest-style metadata workloads against an
// octofs MDS, as the paper uses for Figures 1(a) and 13: each client owns a
// private directory of files and issues a stream of one metadata operation
// type (Mknod, Rmnod, Stat or Readdir).
package mdtest

import (
	"scalerpc/internal/octofs"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/stats"
)

// Op selects the metadata operation a workload phase issues.
type Op int

// Workload phases.
const (
	Mknod Op = iota
	Rmnod
	Stat
	Readdir
)

func (o Op) String() string {
	return [...]string{"Mknod", "Rmnod", "Stat", "Readdir"}[o]
}

// Handler returns the octofs handler id for the op.
func (o Op) Handler() uint8 {
	switch o {
	case Mknod:
		return octofs.HMknod
	case Rmnod:
		return octofs.HRmnod
	case Stat:
		return octofs.HStat
	default:
		return octofs.HReaddir
	}
}

// Workload emits request payloads (paths) for one client.
type Workload struct {
	op       Op
	clientID int
	files    int
	rng      *stats.RNG
	seq      int
}

// NewWorkload builds a per-client workload of the given op over the
// client's preloaded directory of `files` files.
func NewWorkload(op Op, clientID, files int, seed uint64) *Workload {
	return &Workload{op: op, clientID: clientID, files: files, rng: stats.NewRNG(seed)}
}

// PayloadFn adapts the workload to the benchmark driver: it writes the
// next request path into buf and returns its length.
func (w *Workload) PayloadFn() func(rng *stats.RNG, buf []byte) int {
	return func(_ *stats.RNG, buf []byte) int {
		return copy(buf, w.nextPath())
	}
}

// nextPath produces the next operation target.
func (w *Workload) nextPath() string {
	switch w.op {
	case Mknod:
		// Fresh names beyond the preloaded range so creates succeed.
		w.seq++
		return octofs.FilePath(w.clientID, w.files+w.seq)
	case Rmnod:
		// Preloaded names, in order, so removes succeed (until the
		// directory is drained, after which they return NotFound — the
		// server still does the lookup work, as mdtest's timed phase does).
		w.seq++
		return octofs.FilePath(w.clientID, (w.seq-1)%w.files)
	case Stat:
		return octofs.FilePath(w.clientID, w.rng.Intn(w.files))
	default: // Readdir
		return octofs.ClientDir(w.clientID)
	}
}

// DriverConfig builds the rpccore driver configuration for this workload.
func (w *Workload) DriverConfig(batch int, seed uint64) rpccore.DriverConfig {
	return rpccore.DriverConfig{
		Batch:     batch,
		Handler:   w.op.Handler(),
		PayloadFn: w.PayloadFn(),
		Seed:      seed,
	}
}
