package mdtest

import (
	"strings"
	"testing"

	"scalerpc/internal/octofs"
	"scalerpc/internal/stats"
)

func TestHandlerMapping(t *testing.T) {
	cases := map[Op]uint8{
		Mknod:   octofs.HMknod,
		Rmnod:   octofs.HRmnod,
		Stat:    octofs.HStat,
		Readdir: octofs.HReaddir,
	}
	for op, want := range cases {
		if got := op.Handler(); got != want {
			t.Fatalf("%v.Handler() = %d, want %d", op, got, want)
		}
	}
}

func TestMknodPathsAreFresh(t *testing.T) {
	w := NewWorkload(Mknod, 3, 100, 1)
	fn := w.PayloadFn()
	buf := make([]byte, 256)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		n := fn(nil, buf)
		p := string(buf[:n])
		if !strings.HasPrefix(p, octofs.ClientDir(3)+"/") {
			t.Fatalf("path %q outside client dir", p)
		}
		if seen[p] {
			t.Fatalf("mknod path %q repeated (creates would fail)", p)
		}
		seen[p] = true
	}
}

func TestStatPathsHitPreloadedRange(t *testing.T) {
	w := NewWorkload(Stat, 7, 64, 2)
	fn := w.PayloadFn()
	buf := make([]byte, 256)
	for i := 0; i < 200; i++ {
		n := fn(nil, buf)
		p := string(buf[:n])
		found := false
		for f := 0; f < 64; f++ {
			if p == octofs.FilePath(7, f) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("stat path %q not in preloaded range", p)
		}
	}
}

func TestReaddirTargetsClientDir(t *testing.T) {
	w := NewWorkload(Readdir, 2, 10, 3)
	fn := w.PayloadFn()
	buf := make([]byte, 64)
	n := fn(nil, buf)
	if string(buf[:n]) != octofs.ClientDir(2) {
		t.Fatalf("readdir path = %q", buf[:n])
	}
}

func TestRmnodWalksPreloadedFilesInOrder(t *testing.T) {
	w := NewWorkload(Rmnod, 0, 4, 4)
	fn := w.PayloadFn()
	buf := make([]byte, 64)
	var got []string
	for i := 0; i < 6; i++ {
		n := fn(nil, buf)
		got = append(got, string(buf[:n]))
	}
	if got[0] != octofs.FilePath(0, 0) || got[3] != octofs.FilePath(0, 3) {
		t.Fatalf("rmnod order: %v", got)
	}
	if got[4] != octofs.FilePath(0, 0) {
		t.Fatalf("rmnod must wrap around: %v", got)
	}
}

func TestDriverConfigWiring(t *testing.T) {
	w := NewWorkload(Stat, 1, 10, 5)
	cfg := w.DriverConfig(4, 99)
	if cfg.Batch != 4 || cfg.Handler != octofs.HStat || cfg.PayloadFn == nil {
		t.Fatalf("cfg = %+v", cfg)
	}
	buf := make([]byte, 64)
	if n := cfg.PayloadFn(stats.NewRNG(1), buf); n == 0 {
		t.Fatal("payload fn produced nothing")
	}
}
