// Top-level benchmark harness: one testing.B benchmark per table/figure of
// the paper's evaluation (DESIGN.md §3 maps ids to experiments). Each
// benchmark runs the corresponding experiment in Quick mode and reports
// its headline number as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates every result. For the full paper-scale sweeps use
// `go run ./cmd/scalebench all` (see EXPERIMENTS.md for recorded output).
package main

import (
	"encoding/json"
	"os"
	"testing"

	"scalerpc/internal/bench"
)

// TestMain wraps the benchmark run: when BENCH_JSON is set in the
// environment, a machine-readable perf summary (headline metric per
// experiment, from a Quick run) is written after the run, so the repo's
// performance trajectory can be tracked across commits. BENCH_JSON=1 writes
// the default BENCH_scalerpc.json; any other value is used as the path.
func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_JSON"); path != "" && code == 0 {
		if path == "1" {
			path = "BENCH_scalerpc.json"
		}
		if err := writeBenchJSON(path); err != nil {
			os.Stderr.WriteString("bench json: " + err.Error() + "\n")
			code = 1
		}
	}
	os.Exit(code)
}

// writeBenchJSON runs the headline experiments in Quick mode with telemetry
// recording enabled and emits {experiment id → headline, metrics}.
func writeBenchJSON(path string) error {
	type entry struct {
		ID       string  `json:"id"`
		Title    string  `json:"title"`
		Headline float64 `json:"headline"`
	}
	out := struct {
		Benchmarks []entry                `json:"benchmarks"`
		Metrics    *bench.MetricsRecorder `json:"metrics"`
	}{Metrics: &bench.MetricsRecorder{}}
	opts := bench.QuickOptions()
	opts.Metrics = out.Metrics
	for _, id := range []string{"fig8", "fig10", "loadlat"} {
		e, ok := bench.Lookup(id)
		if !ok {
			continue
		}
		opts.Metrics.Begin(id)
		res := e.Run(opts)
		headline := 0.0
		if len(res.Series) > 0 && len(res.Series[0].Y) > 0 {
			sum := 0.0
			for _, y := range res.Series[0].Y {
				sum += y
			}
			headline = sum / float64(len(res.Series[0].Y))
		}
		out.Benchmarks = append(out.Benchmarks, entry{ID: id, Title: res.Title, Headline: headline})
	}
	b, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// runExperiment executes the experiment once per benchmark iteration and
// reports the mean of its first series' Y values as "headline".
func runExperiment(b *testing.B, id string) {
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	opts := bench.QuickOptions()
	var headline float64
	for i := 0; i < b.N; i++ {
		res := e.Run(opts)
		if len(res.Series) > 0 && len(res.Series[0].Y) > 0 {
			sum := 0.0
			for _, y := range res.Series[0].Y {
				sum += y
			}
			headline = sum / float64(len(res.Series[0].Y))
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + res.Render())
		}
	}
	b.ReportMetric(headline, "headline")
}

func BenchmarkFig1a(b *testing.B)  { runExperiment(b, "fig1a") }
func BenchmarkFig1b(b *testing.B)  { runExperiment(b, "fig1b") }
func BenchmarkFig3a(b *testing.B)  { runExperiment(b, "fig3a") }
func BenchmarkFig3b(b *testing.B)  { runExperiment(b, "fig3b") }
func BenchmarkFig8(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11a(b *testing.B) { runExperiment(b, "fig11a") }
func BenchmarkFig11b(b *testing.B) { runExperiment(b, "fig11b") }
func BenchmarkFig12(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { runExperiment(b, "fig13") }
func BenchmarkFig16a(b *testing.B) { runExperiment(b, "fig16a") }
func BenchmarkFig16b(b *testing.B) { runExperiment(b, "fig16b") }

// BenchmarkSec51UDLargeTransfer covers the §5.1 measurement (UD 4 KB
// chunked transfer vs RC streaming).
func BenchmarkSec51UDLargeTransfer(b *testing.B) { runExperiment(b, "sec51") }

// BenchmarkAblation isolates each ScaleRPC design mechanism.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablate") }

// Open-loop loadgen experiments (internal/loadgen). BenchmarkLoadKnee runs
// two full binary searches at 400 clients — by far the heaviest entry here;
// select it explicitly (-bench=LoadKnee) rather than via -bench=. in CI.
func BenchmarkLoadLat(b *testing.B)    { runExperiment(b, "loadlat") }
func BenchmarkLoadMix(b *testing.B)    { runExperiment(b, "loadmix") }
func BenchmarkLoadFaults(b *testing.B) { runExperiment(b, "loadfaults") }
func BenchmarkLoadKnee(b *testing.B)   { runExperiment(b, "loadknee") }
