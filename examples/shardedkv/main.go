// Sharded KV example: a consistent-hash sharded store over ScaleRPC with
// primary/backup replication. A client routes Get/Put by key, runs a
// cross-shard 2PC transfer through the routed coordinator, and keeps
// going while a shard primary crashes mid-run — the director detects the
// expired lease, promotes the backup, and the router retargets in place.
//
//	go run ./examples/shardedkv
package main

import (
	"encoding/binary"
	"fmt"

	"scalerpc/internal/cluster"
	"scalerpc/internal/faults"
	"scalerpc/internal/host"
	"scalerpc/internal/mica"
	"scalerpc/internal/shard"
	"scalerpc/internal/sim"
	"scalerpc/internal/txn"
)

func key(s string) []byte {
	k := make([]byte, 8)
	copy(k, s)
	return k
}

func money(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func main() {
	// Hosts 0-3 serve shards, host 4 runs the director, host 5 is the client.
	c := cluster.New(cluster.Default(6))
	defer c.Close()

	dcfg := shard.DefaultDeployConfig(8, []int{0, 1, 2, 3}, 4,
		mica.Config{Buckets: 1 << 10, Items: 1 << 12, SlotSize: 128})
	d := shard.Deploy(c, dcfg)
	fmt.Printf("deployed %d partitions over hosts 0-3 (epoch %d)\n",
		dcfg.Partitions, d.Map.Epoch)

	// Two accounts for the cross-shard transfer, preloaded on primaries
	// and backups.
	for _, acct := range []string{"alice", "bob"} {
		if err := d.LoadKV(key(acct), money(1000)); err != nil {
			panic(err)
		}
	}

	// Crash partition 0's primary at 2ms — mid-run: the client below is
	// still writing when the lease expires and the backup is promoted.
	dead := d.Map.Primary[0]
	c.InstallFaults(&faults.Scenario{
		Name: "primary-crash", Seed: 1,
		Crashes: []faults.Crash{{Node: dead, At: int64(2 * sim.Millisecond)}},
	})
	fmt.Printf("scheduled crash of host %d (partition 0's primary) at 2ms\n", dead)

	ch := c.Hosts[5]
	ch.Spawn("client", func(t *host.Thread) {
		rcfg := shard.DefaultRouterConfig()
		rcfg.Opts.Timeout = 500 * sim.Microsecond
		rcfg.Opts.MaxRetries = 20
		r := d.NewRouter(ch, rcfg)
		kv := r.KVClient(1)

		// Phase 1: writes and reads before, through, and after the crash.
		acked, failed := 0, 0
		for i := 0; t.P.Now() < 5*sim.Millisecond; i++ {
			k := key(fmt.Sprintf("k%03d", i%24))
			if _, ok := kv.Put(t, k, []byte(fmt.Sprintf("v%06d", i))); ok {
				acked++
			} else {
				failed++
			}
			t.P.Sleep(60 * sim.Microsecond)
		}
		fmt.Printf("[%.1fms] KV phase: %d puts acked, %d failed (router epoch %d)\n",
			float64(t.P.Now())/1e6, acked, failed, r.Epoch())

		// Phase 2: a cross-shard transfer on the promoted deployment.
		co := d.NewCoordinator(r, 7)
		tx := &txn.Txn{
			Writes: [][]byte{key("alice"), key("bob")},
			Apply: func(rv, wv [][]byte) [][]byte {
				a := int64(binary.LittleEndian.Uint64(wv[0]))
				b := int64(binary.LittleEndian.Uint64(wv[1]))
				return [][]byte{money(a - 100), money(b + 100)}
			},
		}
		for t.P.Now() < 8*sim.Millisecond {
			if err := co.Run(t, tx); err == nil {
				break
			}
			t.P.Sleep(50 * sim.Microsecond)
		}
		fmt.Printf("[%.1fms] transfer alice→bob committed (commits=%d aborts=%d)\n",
			float64(t.P.Now())/1e6, co.Stats.Commits,
			co.Stats.LockAborts+co.Stats.ValidationAborts)

		// Phase 3: read both accounts back through the router.
		for _, acct := range []string{"alice", "bob"} {
			v, found, ok := kv.Get(t, key(acct))
			if !ok || !found {
				panic("account lost after failover")
			}
			fmt.Printf("  %s = %d\n", acct, int64(binary.LittleEndian.Uint64(v)))
		}
	})
	c.Env.RunUntil(10 * sim.Millisecond)

	// The director's event log records the failover protocol in order:
	// failover → promote → push (to every live node) → publish.
	fmt.Println("director event log:")
	for _, ev := range d.Director.Events {
		fmt.Printf("  [%.2fms] %-8s host=%d part=%d epoch=%d\n",
			float64(ev.At)/1e6, ev.Kind, ev.Host, ev.Partition, ev.Epoch)
	}
	live := d.LiveMap()
	fmt.Printf("final epoch %d; partition 0 now primary on host %d (was %d)\n",
		live.Epoch, live.Primary[0], dead)
}
