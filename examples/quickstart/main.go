// Quickstart: build a simulated RDMA cluster, start a ScaleRPC server with
// two handlers, connect a handful of clients, and make calls.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"

	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
)

const (
	handlerEcho = 1
	handlerAdd  = 2
)

func main() {
	// A 4-host cluster: host 0 is the server, hosts 1-3 run clients. The
	// default configuration mirrors the paper's testbed (24-core nodes,
	// 30 MB LLC, ConnectX-3-class NICs on a 56 Gbps switch).
	c := cluster.New(cluster.Default(4))
	defer c.Close()

	srv := scalerpc.NewServer(c.Hosts[0], scalerpc.DefaultServerConfig())
	srv.Register(handlerEcho, func(t *host.Thread, id uint16, req, out []byte) int {
		t.Work(100) // simulated application work
		return copy(out, req)
	})
	srv.Register(handlerAdd, func(t *host.Thread, id uint16, req, out []byte) int {
		a := binary.LittleEndian.Uint64(req)
		b := binary.LittleEndian.Uint64(req[8:])
		binary.LittleEndian.PutUint64(out, a+b)
		return 8
	})
	srv.Start()

	// Each client is a simulated thread on a client host. syncCall posts a
	// request and polls until its response arrives — the RPCClient walks
	// the paper's IDLE → WARMUP → PROCESS state machine underneath.
	for i := 0; i < 3; i++ {
		i := i
		ch := c.Hosts[1+i]
		sig := sim.NewSignal(c.Env)
		conn := srv.Connect(ch, sig)
		ch.Spawn("client", func(t *host.Thread) {
			echo := syncCall(t, conn, sig, handlerEcho, []byte(fmt.Sprintf("hello from client %d", i)), 1)
			fmt.Printf("[%6.2fus] client %d echo: %q (state %v)\n",
				float64(t.P.Now())/1000, i, echo, conn.State())

			req := make([]byte, 16)
			binary.LittleEndian.PutUint64(req, uint64(i*1000))
			binary.LittleEndian.PutUint64(req[8:], 42)
			sum := syncCall(t, conn, sig, handlerAdd, req, 2)
			fmt.Printf("[%6.2fus] client %d add: %d + 42 = %d\n",
				float64(t.P.Now())/1000, i, i*1000, binary.LittleEndian.Uint64(sum))
		})
	}

	end := c.Env.RunUntil(10 * sim.Millisecond)
	fmt.Printf("\nsimulation finished at t=%.2fus; server stats: %+v\n",
		float64(end)/1000, srv.Stats)

	// Every component registered its counters into the cluster's telemetry
	// registry at build time; dump a small end-of-run summary from it. (A
	// full JSON dump — including sampled series and trace events when
	// enabled — is one `c.Telemetry.WriteJSON(w)` call away.)
	fmt.Println("\ntelemetry summary:")
	for _, name := range []string{
		"scalerpc.server.served",
		"scalerpc.server.switches",
		"scalerpc.server.warmup_reads",
		"nic0.out.wqes",
		"nic0.qpc.miss",
		"pcie.bus0.rdcur",
		"llc0.dma.alloc",
		"host0.cpu.work_ns",
	} {
		if v, ok := c.Telemetry.Value(name); ok {
			fmt.Printf("  %-28s %.0f\n", name, v)
		}
	}
}

// syncCall is the simplest possible client loop: send one request, poll
// until its response returns.
func syncCall(t *host.Thread, conn rpccore.Conn, sig *sim.Signal, h uint8, payload []byte, reqID uint64) []byte {
	for !conn.TrySend(t, h, payload, reqID) {
		conn.Poll(t, func(rpccore.Response) {})
		sig.WaitTimeout(t.P, 10*sim.Microsecond)
	}
	var resp []byte
	for resp == nil {
		conn.Poll(t, func(r rpccore.Response) {
			if r.ReqID == reqID {
				resp = append([]byte(nil), r.Payload...)
			}
		})
		if resp == nil {
			sig.WaitTimeout(t.P, 10*sim.Microsecond)
		}
	}
	return resp
}
