// Filesystem example: an Octopus-like metadata server exported over
// ScaleRPC (the §4.1 deployment), exercised by concurrent clients that
// build and inspect a small namespace, followed by an mdtest burst.
//
//	go run ./examples/filesystem
package main

import (
	"encoding/binary"
	"fmt"

	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/mdtest"
	"scalerpc/internal/octofs"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
)

func main() {
	c := cluster.New(cluster.Default(4))
	defer c.Close()

	mds := octofs.NewMDS(c.Hosts[0], octofs.DefaultConfig())
	srv := scalerpc.NewServer(c.Hosts[0], scalerpc.DefaultServerConfig())
	mds.RegisterHandlers(srv)
	srv.Start()

	// Part 1: one client builds and lists a directory tree.
	sig := sim.NewSignal(c.Env)
	conn := srv.Connect(c.Hosts[1], sig)
	c.Hosts[1].Spawn("fs-client", func(t *host.Thread) {
		id := uint64(0)
		call := func(h uint8, path string) []byte {
			id++
			return syncCall(t, conn, sig, h, []byte(path), id)
		}
		call(octofs.HMkdir, "/projects")
		call(octofs.HMkdir, "/projects/scalerpc")
		for _, f := range []string{"design.md", "server.go", "client.go"} {
			call(octofs.HMknod, "/projects/scalerpc/"+f)
		}
		r := call(octofs.HStat, "/projects/scalerpc/server.go")
		fmt.Printf("[%6.2fus] stat server.go: status=%d isDir=%d\n",
			float64(t.P.Now())/1000, r[0], r[1])
		r = call(octofs.HReaddir, "/projects/scalerpc")
		n := binary.LittleEndian.Uint32(r[1:])
		fmt.Printf("[%6.2fus] readdir /projects/scalerpc: %d entries:", float64(t.P.Now())/1000, n)
		off := 5
		for i := uint32(0); i < n; i++ {
			l := int(r[off])
			fmt.Printf(" %s", r[off+1:off+1+l])
			off += 1 + l
		}
		fmt.Println()
		call(octofs.HRmnod, "/projects/scalerpc/design.md")
		r = call(octofs.HStat, "/projects/scalerpc/design.md")
		fmt.Printf("[%6.2fus] stat after rmnod: status=%d (2 = not found)\n",
			float64(t.P.Now())/1000, r[0])
	})
	c.Env.RunUntil(5 * sim.Millisecond)

	// Part 2: an mdtest Stat burst from 12 clients over preloaded dirs.
	mds.Preload(12, 200)
	horizon := c.Env.Now() + 2*sim.Millisecond
	var completed uint64
	for i := 0; i < 12; i++ {
		i := i
		ch := c.Hosts[1+i%3]
		s := sim.NewSignal(c.Env)
		cn := srv.Connect(ch, s)
		w := mdtest.NewWorkload(mdtest.Stat, i, 200, uint64(i))
		ch.Spawn("mdtest", func(t *host.Thread) {
			st := rpccore.RunDriver(t, []rpccore.Conn{cn}, w.DriverConfig(4, uint64(i)), s,
				func() bool { return t.P.Now() >= horizon })
			completed += st.Completed
		})
	}
	c.Env.RunUntil(horizon + sim.Millisecond)
	fmt.Printf("\nmdtest: %d stats in 2ms from 12 clients (%.0f kops/s)\n",
		completed, float64(completed)/2)
	fmt.Printf("MDS counters: %+v\n", mds.Stats)
}

func syncCall(t *host.Thread, conn rpccore.Conn, sig *sim.Signal, h uint8, payload []byte, reqID uint64) []byte {
	for !conn.TrySend(t, h, payload, reqID) {
		conn.Poll(t, func(rpccore.Response) {})
		sig.WaitTimeout(t.P, 10*sim.Microsecond)
	}
	var resp []byte
	for resp == nil {
		conn.Poll(t, func(r rpccore.Response) {
			if r.ReqID == reqID {
				resp = append([]byte(nil), r.Payload...)
			}
		})
		if resp == nil {
			sig.WaitTimeout(t.P, 10*sim.Microsecond)
		}
	}
	return resp
}
