// Remote hash table example: the same skewed get/put workload run three
// times against internal/rds — once over the one-sided backend (READ the
// bucket, CAS the version lock, WRITE the slot; zero server CPU), once
// over the RPC backend (one request/response per op, executed by a
// server handler), and once over the adaptive backend, which starts from
// a size-based prior and steers per-op using latency EWMAs, the CAS-retry
// rate, and a bandwidth trip for byte-amplifying ops.
//
// With a hot Zipf key set and a mid-size value, the pure backends land on
// different failure modes (CAS convoys vs server worker queueing) and the
// adaptive run shows where its clients ended up.
//
//	go run ./examples/hashtable
package main

import (
	"encoding/binary"
	"fmt"

	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/rds"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
)

const (
	clients  = 12
	keys     = 256
	valSize  = 256
	theta    = 1.1 // hot Zipf: a handful of keys take most of the traffic
	putFrac  = 0.25
	runFor   = 2 * sim.Millisecond
	thinkMin = 2 // microseconds between ops, jittered per client
)

// runBackend deploys a fresh cluster, drives the closed-loop workload on
// one backend, and reports what happened.
func runBackend(kind rds.Kind) {
	ccfg := cluster.Default(3) // server 0, clients spread over hosts 1-2
	ccfg.Seed = 42
	c := cluster.New(ccfg)
	defer c.Close()

	d := rds.Deploy(c, rds.Config{
		ServerHost: 0,
		Layout:     rds.Layout{Buckets: 256, SlotsPerBucket: 4, ValSize: valSize, QueueCap: 64},
		ServerWork: 2 * sim.Microsecond,
	})
	d.Srv.Prepopulate(keys, 0xcd)

	ops := make([]int, clients)
	var adas []*rds.Adaptive
	for i := 0; i < clients; i++ {
		i := i
		ch := c.Hosts[1+i%2]
		cl := d.NewClient(kind, ch, sim.NewSignal(c.Env))
		if a, ok := cl.(*rds.Adaptive); ok {
			adas = append(adas, a)
		}
		rng := stats.NewRNG(uint64(1000 + i))
		zipf := stats.NewZipf(rng.Split(), keys, theta)
		ch.Spawn(fmt.Sprintf("ht-%s-%d", kind, i), func(t *host.Thread) {
			val := make([]byte, valSize)
			for t.P.Now() < sim.Time(runFor) {
				key := zipf.Next() + 1
				if rng.Float64() < putFrac {
					binary.LittleEndian.PutUint64(val, key)
					if err := cl.Put(t, key, val); err != nil {
						continue
					}
				} else {
					if err := cl.Get(t, key, val); err != nil {
						continue
					}
				}
				ops[i]++
				t.P.Sleep(sim.Duration(thinkMin+rng.Intn(6)) * sim.Microsecond)
			}
		})
	}
	c.Env.RunUntil(sim.Time(runFor) + 200*sim.Microsecond)

	total := 0
	for _, n := range ops {
		total += n
	}
	mops := float64(total) / float64(runFor) * 1e3 // ops/ns -> Mops/s
	fmt.Printf("%-9s %8d ops  %6.3f Mops/s   one-sided=%d rpc=%d cas_retries=%d torn=%d\n",
		kind, total, mops, d.Stats.OneSidedOps, d.Stats.RPCOps,
		d.Stats.CASRetries, d.Stats.TornRetries)
	if len(adas) > 0 {
		prefRPC := 0
		for _, a := range adas {
			if a.PreferredPut() == rds.KindRPC {
				prefRPC++
			}
		}
		fmt.Printf("          adaptive: %d switches, %d probes; %d/%d clients ended preferring RPC for puts\n",
			d.Stats.Switches, d.Stats.Probes, prefRPC, len(adas))
	}
}

func main() {
	fmt.Printf("remote hash table: %d clients, %d keys (Zipf theta %.1f), %dB values, %.0f%% puts, %.0fms window\n\n",
		clients, keys, theta, valSize, putFrac*100, float64(runFor)/1e6)
	for _, kind := range []rds.Kind{rds.KindOneSided, rds.KindRPC, rds.KindAdaptive} {
		runBackend(kind)
	}
}
