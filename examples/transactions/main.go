// Transactions example: ScaleTX (§4.2) running SmallBank over three
// storage servers with globally synchronized ScaleRPC schedulers, co-using
// one-sided RDMA verbs for validation and commit. The example verifies the
// serializability invariant: payments never create or destroy money.
//
//	go run ./examples/transactions
package main

import (
	"fmt"

	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/mica"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
	"scalerpc/internal/smallbank"
	"scalerpc/internal/txn"
)

func main() {
	c := cluster.New(cluster.Default(6))
	defer c.Close()

	// Three participants, each a MICA shard plus transaction handlers over
	// its own ScaleRPC server; the servers' schedulers are phase-aligned by
	// the NTP-like global synchronization.
	var parts []*txn.Participant
	var servers []*scalerpc.Server
	for i := 0; i < 3; i++ {
		p := txn.NewParticipant(c.Hosts[i], mica.Config{Buckets: 1 << 14, Items: 1 << 16, SlotSize: 128})
		cfg := scalerpc.DefaultServerConfig()
		cfg.Dynamic = false
		cfg.SyncPeriod = 2 * sim.Millisecond
		s := scalerpc.NewServer(c.Hosts[i], cfg)
		p.RegisterHandlers(s)
		s.Start()
		parts = append(parts, p)
		servers = append(servers, s)
	}
	scalerpc.NewSyncGroup(servers)

	sbCfg := smallbank.Config{Accounts: 5000, InitialBalance: 1000, HotFraction: 0.04, HotProbability: 0.6}
	if err := smallbank.Load(parts, sbCfg); err != nil {
		panic(err)
	}
	before := smallbank.TotalBalance(parts, sbCfg)
	fmt.Printf("loaded %d accounts (2 rows each) across 3 shards; total balance %d\n",
		sbCfg.Accounts, before)

	// 24 coordinators on 3 client hosts run SendPayment transactions.
	horizon := 5 * sim.Millisecond
	coords := make([]*txn.Coordinator, 24)
	for i := range coords {
		i := i
		ch := c.Hosts[3+i%3]
		sig := sim.NewSignal(c.Env)
		conns := make([]rpccore.Conn, 3)
		for p, s := range servers {
			conns[p] = s.Connect(ch, sig)
		}
		co := txn.NewCoordinator(ch, uint64(i+1), parts, conns, true /* one-sided */, sig)
		coords[i] = co
		co.Spawn(func(t *host.Thread, cc *txn.Coordinator) {
			g := smallbank.NewGen(sbCfg, uint64(i)*977+3)
			g.OnlyPayments = true
			txn.RunLoop(t, cc, g.Next, func() bool { return t.P.Now() >= horizon })
		})
	}
	c.Env.RunUntil(horizon + 2*sim.Millisecond)

	var agg txn.CoordinatorStats
	for _, co := range coords {
		agg.Commits += co.Stats.Commits
		agg.LockAborts += co.Stats.LockAborts
		agg.ValidationAborts += co.Stats.ValidationAborts
		agg.OneSidedReads += co.Stats.OneSidedReads
		agg.OneSidedWrites += co.Stats.OneSidedWrites
	}
	after := smallbank.TotalBalance(parts, sbCfg)
	fmt.Printf("\n%d payments committed in 5ms (%.2f Mtxns/s)\n",
		agg.Commits, float64(agg.Commits)/5e3)
	fmt.Printf("aborts: lock=%d validation=%d; one-sided commits used %d RDMA writes\n",
		agg.LockAborts, agg.ValidationAborts, agg.OneSidedWrites)
	fmt.Printf("balance before=%d after=%d (conserved: %v)\n", before, after, before == after)
	if before != after {
		panic("serializability violated: money created or destroyed")
	}
}
