// Priority example: non-uniform clients (Figure 12). Half the clients post
// continuously, half mostly idle; the priority-based scheduler groups the
// busy clients together and gives their group a longer slice, improving
// aggregate throughput over static grouping.
//
//	go run ./examples/priority
package main

import (
	"fmt"

	"scalerpc/internal/cluster"
	"scalerpc/internal/host"
	"scalerpc/internal/rpccore"
	"scalerpc/internal/scalerpc"
	"scalerpc/internal/sim"
	"scalerpc/internal/stats"
)

func run(dynamic bool) (float64, uint64) {
	c := cluster.New(cluster.Default(6))
	defer c.Close()
	cfg := scalerpc.DefaultServerConfig()
	cfg.GroupSize = 16
	cfg.TimeSlice = 50 * sim.Microsecond
	cfg.Dynamic = dynamic
	srv := scalerpc.NewServer(c.Hosts[0], cfg)
	srv.Register(1, func(t *host.Thread, id uint16, req, out []byte) int {
		t.Work(300)
		return copy(out, req)
	})
	srv.Start()

	const nClients = 48
	warmup := 500 * sim.Microsecond
	horizon := warmup + 3*sim.Millisecond
	var completed uint64
	for i := 0; i < nClients; i++ {
		i := i
		ch := c.Hosts[1+i%5]
		sig := sim.NewSignal(c.Env)
		conn := srv.Connect(ch, sig)
		// Even clients are busy (no think time); odd clients idle ~200us
		// between batches.
		var think sim.Duration
		if i%2 == 1 {
			think = 200 * sim.Microsecond
		}
		dcfg := rpccore.DriverConfig{
			Batch: 4, Handler: 1, PayloadSize: 32, Seed: uint64(i),
			MeasureFrom: warmup,
			StartDelay:  sim.Duration(i%64) * 311,
			ThinkTime:   func(*stats.RNG) sim.Duration { return think },
		}
		ch.Spawn("client", func(t *host.Thread) {
			st := rpccore.RunDriver(t, []rpccore.Conn{conn}, dcfg, sig,
				func() bool { return t.P.Now() >= horizon })
			completed += st.Completed
		})
	}
	c.Env.RunUntil(horizon + sim.Millisecond)
	return float64(completed) / 3e3, srv.Stats.Regroups
}

func main() {
	staticTput, _ := run(false)
	dynTput, regroups := run(true)
	fmt.Printf("48 clients, half busy / half idle (200us think), group size 16:\n\n")
	fmt.Printf("  static grouping : %.2f Mops/s\n", staticTput)
	fmt.Printf("  dynamic priority: %.2f Mops/s (%d regroups)\n", dynTput, regroups)
	fmt.Printf("\nimprovement: %+.1f%%\n", 100*(dynTput-staticTput)/staticTput)
}
